package xpath

// Compilation of location paths into sequence-at-a-time plans.
//
// Parse produces the AST; compilePlans then lowers every pathExpr into a
// pathPlan — a pipeline of step operators that evaluate a whole context
// sequence per step through the staircase join instead of looping over
// context nodes (see "XQuery Join Graph Isolation": paths become small
// relational plans over the pre/size/level columns, not interpreted tree
// walks). The lowering classifies each step's predicates:
//
//   - a leading integral positional predicate ([1], [n], [position()=n])
//     on a forward axis is fused into the axis scan as an early-exit
//     counter (opFusedPos) — the scan for a context node stops at its
//     n-th match instead of materializing the full axis;
//   - predicates that never consult position() or last() and cannot
//     evaluate to a number are applied over the merged result sequence
//     with one reusable scratch context (seqPreds);
//   - everything else (last(), position() on reverse axes, numerically
//     typed or statically untypable predicates) keeps the node-at-a-time
//     path (opPerNode), whose per-context numbering defines their
//     semantics.
//
// The lowering also rewrites the descendant shorthand: a bare
// descendant-or-self::node() step followed by a child (or descendant)
// step with only sequence-safe predicates collapses into a single
// descendant step, so //x runs as one pruned staircase scan rather than
// materializing every node in the document first. The rewrite is
// skipped when the following step carries positional predicates, whose
// numbering depends on the uncollapsed context set.

// compilePlans walks the AST and attaches a plan to every location
// path, including paths nested inside predicates, function arguments
// and filter expressions (their contexts are sequences too).
func compilePlans(e expr) {
	switch x := e.(type) {
	case *pathExpr:
		if x.start != nil {
			compilePlans(x.start)
		}
		for i := range x.steps {
			for _, pr := range x.steps[i].preds {
				compilePlans(pr)
			}
		}
		x.plan = compilePath(x)
	case *filterExpr:
		compilePlans(x.base)
		for _, p := range x.preds {
			compilePlans(p)
		}
		classifyFilter(x)
	case *binaryExpr:
		compilePlans(x.l)
		compilePlans(x.r)
	case *negExpr:
		compilePlans(x.e)
	case *unionExpr:
		compilePlans(x.l)
		compilePlans(x.r)
	case *funcCall:
		for _, a := range x.args {
			compilePlans(a)
		}
	}
}

// compilePath lowers one location path into a plan.
func compilePath(p *pathExpr) *pathPlan {
	pl := &pathPlan{}
	steps := p.steps
	for i := 0; i < len(steps); i++ {
		st := &steps[i]
		if ax, ok := fuseDescendant(st, steps, i); ok {
			next := steps[i+1]
			fused := classifyStep(step{axis: ax, tk: next.tk, name: next.name, preds: next.preds})
			fused.fused = true
			pl.steps = append(pl.steps, fused)
			i++ // the rewrite consumed the following step too
			continue
		}
		pl.steps = append(pl.steps, classifyStep(*st))
	}
	return pl
}

// fuseDescendant reports whether steps[i] is a bare
// descendant-or-self::node() that can collapse with steps[i+1], and the
// axis of the fused step:
//
//	d-o-s::node()/child::X       ≡ descendant::X
//	d-o-s::node()/descendant::X  ≡ descendant::X
//	d-o-s::node()/d-o-s::X       ≡ descendant-or-self::X
//
// The equivalences hold only for position-free predicates on the second
// step (collapsing changes the context set each candidate is numbered
// against), so the second step must classify as a pure sequence step.
func fuseDescendant(st *step, steps []step, i int) (Axis, bool) {
	if st.axis != AxisDescendantOrSelf || st.tk != testNode || len(st.preds) > 0 {
		return 0, false
	}
	if i+1 >= len(steps) {
		return 0, false
	}
	next := &steps[i+1]
	var ax Axis
	switch next.axis {
	case AxisChild, AxisDescendant:
		ax = AxisDescendant
	case AxisDescendantOrSelf:
		ax = AxisDescendantOrSelf
	default:
		return 0, false
	}
	if cs := classifyStep(*next); cs.kind != opSeq || cs.dyn {
		// A dyn predicate can turn out numeric at runtime, and numeric
		// predicates number against the uncollapsed context set.
		return 0, false
	}
	return ax, true
}

// classifyStep decides how one step executes.
func classifyStep(st step) planStep {
	ps := planStep{st: st}
	if len(st.preds) == 0 {
		ps.kind = opSeq
		return ps
	}
	// Leading integral positional predicate on a forward axis: fuse it
	// into the scan as an early-exit counter, provided the remaining
	// predicates are sequence-safe.
	if k, ok := posLiteral(st.preds[0]); ok && !st.axis.Reverse() && allSeqSafe(st.preds[1:]) {
		ps.kind = opFusedPos
		ps.pos = k
		ps.seqPreds = st.preds[1:]
		return ps
	}
	if seq, dyn := classifyPreds(st.preds); seq {
		ps.kind = opSeq
		ps.seqPreds = st.preds
		ps.dyn = dyn
		return ps
	}
	ps.kind = opPerNode
	return ps
}

// classifyPreds reports whether every predicate can be applied over the
// merged result sequence. A statically typed predicate qualifies through
// seqSafe; an *untypable* one (a bare variable, whose value only runtime
// knows) qualifies when it is position-free, but makes the step dynamic:
// if the value turns out to be a number after all, numeric predicates
// select by per-context position and the runtime falls back to the
// node-at-a-time path for that step (see errNumericPred).
func classifyPreds(preds []expr) (seq, dyn bool) {
	for _, p := range preds {
		switch {
		case seqSafe(p):
		case positionFree(p) && typeOf(p) == tUnknown:
			dyn = true
		default:
			return false, false
		}
	}
	return true, dyn
}

// classifyFilter attaches the predicate classification to a filter
// expression (primary[pred]...). Unlike a step — where each context node
// numbers its own axis candidates — a filter's predicates number against
// the whole base sequence, which is exactly the order the evaluator
// holds it in. Every position-free predicate (typed or not) is therefore
// filtered over the sequence in place, with a runtime number compared
// against the sequence position (identical semantics, no fallback
// needed); only predicates that consult position() or last() keep the
// allocating per-node path, purely because their classification is what
// Explain reports.
func classifyFilter(f *filterExpr) {
	f.seq = make([]bool, len(f.preds))
	for i, p := range f.preds {
		f.seq[i] = positionFree(p)
	}
	f.ownedBase = ownedNodeSetBase(f.base)
}

// ownedNodeSetBase reports whether evaluating e always yields a freshly
// allocated node-set the filter may mutate in place. A variable
// reference hands back the caller's bound node-set, which must never be
// filtered destructively; path, union and filter expressions build their
// results per evaluation.
func ownedNodeSetBase(e expr) bool {
	switch e.(type) {
	case *pathExpr, *unionExpr, *filterExpr:
		return true
	}
	return false
}

// posLiteral recognizes the two spellings of a static position
// predicate: an integral number literal [n], and [position() = n] (in
// either operand order), for n >= 1.
func posLiteral(e expr) (int, bool) {
	if n, ok := e.(numberLit); ok {
		return intLiteral(float64(n))
	}
	if b, ok := e.(*binaryExpr); ok && b.op == "=" {
		if isPositionCall(b.l) {
			if n, ok := b.r.(numberLit); ok {
				return intLiteral(float64(n))
			}
		}
		if isPositionCall(b.r) {
			if n, ok := b.l.(numberLit); ok {
				return intLiteral(float64(n))
			}
		}
	}
	return 0, false
}

func intLiteral(f float64) (int, bool) {
	k := int(f)
	if float64(k) != f || k < 1 {
		return 0, false
	}
	return k, true
}

func isPositionCall(e expr) bool {
	f, ok := e.(*funcCall)
	return ok && f.name == "position" && len(f.args) == 0
}

func allSeqSafe(preds []expr) bool {
	for _, p := range preds {
		if !seqSafe(p) {
			return false
		}
	}
	return true
}

// seqSafe reports whether a predicate may be evaluated over the merged
// result sequence instead of per context node: it must never consult
// position() or last() of the predicate context, and its static type
// must rule out a number (numeric predicate values select by position).
func seqSafe(p expr) bool {
	if !positionFree(p) {
		return false
	}
	switch typeOf(p) {
	case tBool, tStr, tNodeset:
		return true
	}
	return false
}

// positionFree reports whether evaluating e in a predicate context never
// reads that context's position() or last(). Subexpressions that
// establish their own context — the predicates of nested steps and
// filter expressions — do not count against the outer context.
func positionFree(e expr) bool {
	switch x := e.(type) {
	case numberLit, stringLit, varRef:
		return true
	case *negExpr:
		return positionFree(x.e)
	case *binaryExpr:
		return positionFree(x.l) && positionFree(x.r)
	case *unionExpr:
		return positionFree(x.l) && positionFree(x.r)
	case *funcCall:
		if x.name == "position" || x.name == "last" {
			return false
		}
		for _, a := range x.args {
			if !positionFree(a) {
				return false
			}
		}
		return true
	case *pathExpr:
		// Steps and their predicates see their own contexts; only a
		// rooting primary expression evaluates in the outer one.
		return x.start == nil || positionFree(x.start)
	case *filterExpr:
		return positionFree(x.base)
	}
	return false
}

// staticType is the statically inferred XPath 1.0 value type.
type staticType int

const (
	tUnknown staticType = iota
	tNum
	tStr
	tBool
	tNodeset
)

// typeOf infers the static result type of an expression. tUnknown means
// the type depends on runtime values (variables, unknown functions) and
// the caller must assume the worst.
func typeOf(e expr) staticType {
	switch x := e.(type) {
	case numberLit:
		return tNum
	case stringLit:
		return tStr
	case varRef:
		return tUnknown
	case *negExpr:
		return tNum
	case *binaryExpr:
		switch x.op {
		case "and", "or", "=", "!=", "<", "<=", ">", ">=":
			return tBool
		}
		return tNum
	case *unionExpr, *pathExpr, *filterExpr:
		return tNodeset
	case *funcCall:
		switch x.name {
		case "count", "sum", "floor", "ceiling", "round", "number",
			"string-length", "position", "last":
			return tNum
		case "string", "concat", "substring", "substring-before",
			"substring-after", "normalize-space", "translate", "name",
			"local-name":
			return tStr
		case "not", "true", "false", "boolean", "contains", "starts-with":
			return tBool
		}
		return tUnknown
	}
	return tUnknown
}
