package xpath

import (
	"strings"
	"testing"

	"mxq/internal/rostore"
	"mxq/internal/shred"
	"mxq/internal/xenc"
)

func smallView(t *testing.T) xenc.DocView {
	t.Helper()
	tr, err := shred.Parse(strings.NewReader(`<r><a>12</a><a>7</a><b> padded </b></r>`), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := rostore.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func evalStr(t *testing.T, v xenc.DocView, q string) string {
	t.Helper()
	val, err := MustParse(q).Eval(v)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return StringOf(v, val)
}

func TestTranslate(t *testing.T) {
	v := smallView(t)
	cases := [][2]string{
		{`translate("bar", "abc", "ABC")`, "BAr"},
		{`translate("--aaa--", "abc-", "ABC")`, "AAA"}, // '-' dropped
		{`translate("hello", "", "xyz")`, "hello"},     // nothing mapped
		{`translate("aab", "aa", "xy")`, "xxb"},        // first mapping wins
	}
	for _, c := range cases {
		if got := evalStr(t, v, c[0]); got != c[1] {
			t.Errorf("%s = %q, want %q", c[0], got, c[1])
		}
	}
	if _, err := MustParse(`translate("a", "b")`).Eval(v); err == nil {
		t.Error("translate with 2 args accepted")
	}
}

func TestContextDependentFunctions(t *testing.T) {
	v := smallView(t)
	// string() and number() with no argument use the context node.
	ns, err := MustParse(`//a[number() > 10]`).Select(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 || StringValue(v, ns[0]) != "12" {
		t.Fatalf("number() context filter = %v", ns)
	}
	ns, err = MustParse(`//a[string() = "7"]`).Select(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 {
		t.Fatalf("string() context filter = %v", ns)
	}
	ns, err = MustParse(`//b[string-length() = 8]`).Select(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 {
		t.Fatalf("string-length() context filter = %v", ns)
	}
	ns, err = MustParse(`//b[normalize-space() = "padded"]`).Select(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 {
		t.Fatalf("normalize-space() context filter = %v", ns)
	}
}

func TestNameFunctionVariants(t *testing.T) {
	v := smallView(t)
	if got := evalStr(t, v, `name(/r)`); got != "r" {
		t.Errorf("name(/r) = %q", got)
	}
	if got := evalStr(t, v, `name(//nosuch)`); got != "" {
		t.Errorf("name(empty) = %q", got)
	}
	if got := evalStr(t, v, `name(//a/text())`); got != "" {
		t.Errorf("name(text) = %q", got)
	}
}

func TestSumOverNodes(t *testing.T) {
	v := smallView(t)
	if got := evalStr(t, v, `string(sum(//a))`); got != "19" {
		t.Errorf("sum(//a) = %q", got)
	}
}

func TestSubstringClamping(t *testing.T) {
	v := smallView(t)
	cases := [][2]string{
		{`substring("hello", 0)`, "hello"},
		{`substring("hello", 4)`, "lo"},
		{`substring("hello", 9)`, ""},
		{`substring("hello", 2, 100)`, "ello"},
		{`substring("héllo", 2, 2)`, "él"}, // rune-based
	}
	for _, c := range cases {
		if got := evalStr(t, v, c[0]); got != c[1] {
			t.Errorf("%s = %q, want %q", c[0], got, c[1])
		}
	}
}

func TestUnionRequiresNodeSets(t *testing.T) {
	v := smallView(t)
	if _, err := MustParse(`//a | 3`).Eval(v); err == nil {
		t.Error("union with number accepted")
	}
}

func TestPathOverNonNodeSetErrors(t *testing.T) {
	v := smallView(t)
	for _, q := range []string{`(1)/a`, `("x")[1]/b`} {
		e, err := Parse(q)
		if err != nil {
			continue
		}
		if _, err := e.Eval(v); err == nil {
			t.Errorf("%s evaluated without error", q)
		}
	}
}

func TestFilterOnParenthesizedPath(t *testing.T) {
	v := smallView(t)
	// (//a)[2] selects the second a overall.
	ns, err := MustParse(`(//a)[2]`).Select(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 || StringValue(v, ns[0]) != "7" {
		t.Fatalf("(//a)[2] = %v", ns)
	}
	// Path continuation after a filter.
	ns, err = MustParse(`(//a)[1]/text()`).Select(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 || StringValue(v, ns[0]) != "12" {
		t.Fatalf("(//a)[1]/text() = %v", ns)
	}
}
