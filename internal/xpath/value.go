package xpath

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"mxq/internal/xenc"
)

// DocNodePre is the pre rank of the virtual document node (the parent of
// the root element). It never appears in a store; the evaluator treats it
// specially.
const DocNodePre xenc.Pre = -1

// NoAttr marks a Node that is not an attribute node.
const NoAttr int32 = -1

// Node identifies one XPath node: either a tree node (Attr == NoAttr) or
// the Attr-th attribute of the element at Pre.
type Node struct {
	Pre  xenc.Pre
	Attr int32
}

// DocNode returns the virtual document node.
func DocNode() Node { return Node{Pre: DocNodePre, Attr: NoAttr} }

// ElemNode wraps a tree node rank.
func ElemNode(p xenc.Pre) Node { return Node{Pre: p, Attr: NoAttr} }

// Before reports document order: attributes come after their element and
// before its children (attribute index breaks ties).
func (n Node) Before(m Node) bool {
	if n.Pre != m.Pre {
		return n.Pre < m.Pre
	}
	return n.Attr < m.Attr
}

// Value is an XPath 1.0 value: NodeSet, Number, String or Boolean.
type Value interface{ xpathValue() }

// NodeSet is a document-ordered, duplicate-free sequence of nodes.
type NodeSet []Node

// Number is an XPath number (IEEE double).
type Number float64

// String is an XPath string.
type String string

// Boolean is an XPath boolean.
type Boolean bool

func (NodeSet) xpathValue() {}
func (Number) xpathValue()  {}
func (String) xpathValue()  {}
func (Boolean) xpathValue() {}

// Pres returns the tree-node ranks in the set, dropping attribute nodes.
func (ns NodeSet) Pres() []xenc.Pre {
	out := make([]xenc.Pre, 0, len(ns))
	for _, n := range ns {
		if n.Attr == NoAttr && n.Pre != DocNodePre {
			out = append(out, n.Pre)
		}
	}
	return out
}

func sortDedupe(ns NodeSet) NodeSet {
	sort.Slice(ns, func(i, j int) bool { return ns[i].Before(ns[j]) })
	w := 0
	for i := range ns {
		if i == 0 || ns[i] != ns[i-1] {
			ns[w] = ns[i]
			w++
		}
	}
	return ns[:w]
}

// StringValue computes the XPath string-value of a node: concatenated
// text descendants for elements and the document node, the content for
// text/comment/PI nodes, the value for attribute nodes.
func StringValue(v xenc.DocView, n Node) string {
	if n.Attr != NoAttr {
		attrs := v.Attrs(n.Pre)
		if int(n.Attr) < len(attrs) {
			return attrs[n.Attr].Val
		}
		return ""
	}
	if n.Pre == DocNodePre {
		return subtreeText(v, v.Root())
	}
	switch v.Kind(n.Pre) {
	case xenc.KindElem:
		return subtreeText(v, n.Pre)
	default:
		return v.Value(n.Pre)
	}
}

func subtreeText(v xenc.DocView, p xenc.Pre) string {
	remaining := v.Size(p)
	if remaining == 0 {
		return ""
	}
	var b strings.Builder
	q := p
	lvl := v.Level(p)
	for remaining > 0 {
		q = xenc.SkipFree(v, q+1)
		if q >= v.Len() || v.Level(q) <= lvl {
			break
		}
		if v.Kind(q) == xenc.KindText {
			b.WriteString(v.Value(q))
		}
		remaining--
	}
	return b.String()
}

// BoolOf applies the XPath boolean() conversion.
func BoolOf(val Value) bool {
	switch x := val.(type) {
	case Boolean:
		return bool(x)
	case Number:
		return x != 0 && !math.IsNaN(float64(x))
	case String:
		return len(x) > 0
	case NodeSet:
		return len(x) > 0
	}
	return false
}

// NumberOf applies the XPath number() conversion. Node sets convert via
// the string-value of their first node.
func NumberOf(v xenc.DocView, val Value) float64 {
	switch x := val.(type) {
	case Number:
		return float64(x)
	case Boolean:
		if x {
			return 1
		}
		return 0
	case String:
		return parseNumber(string(x))
	case NodeSet:
		if len(x) == 0 {
			return math.NaN()
		}
		return parseNumber(StringValue(v, x[0]))
	}
	return math.NaN()
}

func parseNumber(s string) float64 {
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return math.NaN()
	}
	return f
}

// StringOf applies the XPath string() conversion.
func StringOf(v xenc.DocView, val Value) string {
	switch x := val.(type) {
	case String:
		return string(x)
	case Boolean:
		if x {
			return "true"
		}
		return "false"
	case Number:
		return FormatNumber(float64(x))
	case NodeSet:
		if len(x) == 0 {
			return ""
		}
		return StringValue(v, x[0])
	}
	return ""
}

// FormatNumber renders a number the XPath way: integers without a
// decimal point, NaN as "NaN".
func FormatNumber(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	case f == math.Trunc(f) && math.Abs(f) < 1e15:
		return strconv.FormatInt(int64(f), 10)
	default:
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}

// compare implements the XPath 1.0 comparison rules, including the
// existential semantics of node-set operands.
func compare(v xenc.DocView, op string, l, r Value) bool {
	ln, lok := l.(NodeSet)
	rn, rok := r.(NodeSet)
	switch {
	case lok && rok:
		for _, a := range ln {
			sa := StringValue(v, a)
			for _, b := range rn {
				if cmpAtomic(op, atom{s: sa}, atom{s: StringValue(v, b)}) {
					return true
				}
			}
		}
		return false
	case lok:
		for _, a := range ln {
			if compare(v, op, atomValue(v, a), r) {
				return true
			}
		}
		return false
	case rok:
		for _, b := range rn {
			if compare(v, op, l, atomValue(v, b)) {
				return true
			}
		}
		return false
	}
	// Both atomic.
	if op == "=" || op == "!=" {
		if _, ok := l.(Boolean); ok {
			return cmpBool(op, BoolOf(l), BoolOf(r))
		}
		if _, ok := r.(Boolean); ok {
			return cmpBool(op, BoolOf(l), BoolOf(r))
		}
		if _, ok := l.(Number); ok {
			return cmpNum(op, NumberOf(v, l), NumberOf(v, r))
		}
		if _, ok := r.(Number); ok {
			return cmpNum(op, NumberOf(v, l), NumberOf(v, r))
		}
		return cmpStr(op, StringOf(v, l), StringOf(v, r))
	}
	return cmpNum(op, NumberOf(v, l), NumberOf(v, r))
}

// atom carries a node's string-value for mixed comparisons.
type atom struct{ s string }

func atomValue(v xenc.DocView, n Node) Value { return String(StringValue(v, n)) }

func cmpAtomic(op string, a, b atom) bool {
	switch op {
	case "=":
		return a.s == b.s
	case "!=":
		return a.s != b.s
	default:
		return cmpNum(op, parseNumber(a.s), parseNumber(b.s))
	}
}

func cmpNum(op string, a, b float64) bool {
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

func cmpStr(op string, a, b string) bool {
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	}
	return false
}

func cmpBool(op string, a, b bool) bool {
	if op == "=" {
		return a == b
	}
	return a != b
}
