package xpath

import (
	"math"
	"strings"
	"testing"

	"mxq/internal/core"
	"mxq/internal/rostore"
	"mxq/internal/shred"
	"mxq/internal/xenc"
)

const sampleDoc = `<site>
  <people>
    <person id="person0"><name>Kasidit Treweek</name><income>40000</income></person>
    <person id="person1"><name>Oleg Blanc</name><income>120000</income>
      <watches><watch open_auction="oa1"/></watches></person>
    <person id="person2"><name>Aditya Brown</name></person>
  </people>
  <open_auctions>
    <open_auction id="oa0">
      <bidder><increase>3.00</increase></bidder>
      <bidder><increase>7.50</increase></bidder>
      <initial>15.50</initial>
      <current>22.00</current>
    </open_auction>
    <open_auction id="oa1">
      <bidder><increase>12.00</increase></bidder>
      <initial>20.00</initial>
      <current>32.00</current>
    </open_auction>
  </open_auctions>
  <regions>
    <europe><item id="item0"><name>gold ring</name></item></europe>
    <namerica><item id="item1"><name>silver spoon</name></item></namerica>
  </regions>
</site>`

// views builds the sample on both schemas so every test runs on each.
func views(t *testing.T) map[string]xenc.DocView {
	t.Helper()
	tr, err := shred.Parse(strings.NewReader(sampleDoc), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ro, err := rostore.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	up, err := core.Build(tr, core.Options{PageSize: 16, FillFactor: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]xenc.DocView{"ro": ro, "up": up}
}

func evalString(t *testing.T, v xenc.DocView, q string) string {
	t.Helper()
	e, err := Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	val, err := e.Eval(v)
	if err != nil {
		t.Fatalf("eval %q: %v", q, err)
	}
	return StringOf(v, val)
}

func evalCount(t *testing.T, v xenc.DocView, q string) int {
	t.Helper()
	e, err := Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	ns, err := e.Select(v)
	if err != nil {
		t.Fatalf("select %q: %v", q, err)
	}
	return len(ns)
}

func TestPathsAndPredicates(t *testing.T) {
	cases := []struct {
		q    string
		want int
	}{
		{`/site`, 1},
		{`/nosuch`, 0},
		{`/site/people/person`, 3},
		{`/site/people/person[@id="person0"]`, 1},
		{`/site/people/person[@id="nobody"]`, 0},
		{`//person`, 3},
		{`//person/name`, 3},
		{`//watch`, 1},
		{`//person[watches]`, 1},
		{`//person[not(watches)]`, 2},
		{`/site/open_auctions/open_auction/bidder`, 3},
		{`/site/open_auctions/open_auction/bidder[1]`, 2},
		{`/site/open_auctions/open_auction/bidder[last()]`, 2},
		{`/site/open_auctions/open_auction[count(bidder) > 1]`, 1},
		{`//open_auction[bidder/increase > 10]`, 1},
		{`//item[contains(name, "gold")]`, 1},
		{`//*[starts-with(name(), "open_a")]`, 3},
		{`/site/regions/*/item`, 2},
		{`//person[position() = 2]`, 1},
		{`//person[2]`, 1},
		{`//text()`, 14},
		{`//node()`, 46},
		{`//person/@id`, 3},
		{`//@id`, 7},
		{`/site/people/person[income > 50000]`, 1},
		{`/site/people/person[income]`, 2},
		{`//person/name[../income]`, 2},
		{`//name | //income`, 7},
		{`//person[.//watch]`, 1},
		{`/site/people/person[1]/following-sibling::person`, 2},
		{`/site/people/person[3]/preceding-sibling::person`, 2},
		{`//watch/ancestor::person`, 1},
		{`//watch/ancestor-or-self::*`, 5},
		{`//increase/parent::bidder`, 3},
		{`//person[1]/following::item`, 2},
		{`//item[1]/preceding::person`, 3},
		{`//person/self::person`, 3},
		{`//person/descendant-or-self::person`, 3},
		{`/site/people/person[@id="person1"]/watches/watch`, 1},
	}
	for name, v := range views(t) {
		for _, c := range cases {
			if got := evalCount(t, v, c.q); got != c.want {
				t.Errorf("[%s] count(%s) = %d, want %d", name, c.q, got, c.want)
			}
		}
	}
}

func TestStringResults(t *testing.T) {
	cases := []struct {
		q, want string
	}{
		{`string(/site/people/person[@id="person0"]/name)`, "Kasidit Treweek"},
		{`string(//person[2]/name/text())`, "Oleg Blanc"},
		{`string(//open_auction[@id="oa1"]/initial)`, "20.00"},
		{`string(//person[1]/@id)`, "person0"},
		{`concat("a", "-", "b")`, "a-b"},
		{`normalize-space("  x   y ")`, "x y"},
		{`substring("hello", 2, 3)`, "ell"},
		{`substring-before("a=b", "=")`, "a"},
		{`substring-after("a=b", "=")`, "b"},
		{`string(count(//person))`, "3"},
		{`string(1 div 2)`, "0.5"},
		{`string(7 mod 3)`, "1"},
		{`string(2 + 3 * 4)`, "14"},
		{`string((2 + 3) * 4)`, "20"},
		{`string(-5 + 2)`, "-3"},
		{`string(sum(//income))`, "160000"},
		{`string(floor(2.7))`, "2"},
		{`string(ceiling(2.2))`, "3"},
		{`string(round(2.5))`, "3"},
		{`string(true())`, "true"},
		{`string(10000000)`, "10000000"},
		{`name(//person[1])`, "person"},
		{`local-name(//@id)`, "id"},
		{`string(string-length("abcd"))`, "4"},
	}
	for name, v := range views(t) {
		for _, c := range cases {
			if got := evalString(t, v, c.q); got != c.want {
				t.Errorf("[%s] %s = %q, want %q", name, c.q, got, c.want)
			}
		}
	}
}

func TestBooleansAndComparisons(t *testing.T) {
	cases := []struct {
		q    string
		want bool
	}{
		{`1 < 2`, true},
		{`2 <= 2`, true},
		{`3 > 4`, false},
		{`"a" = "a"`, true},
		{`"a" != "a"`, false},
		{`1 = "1"`, true},
		{`true() and false()`, false},
		{`true() or false()`, true},
		{`not(false())`, true},
		{`boolean(//person)`, true},
		{`boolean(//nosuch)`, false},
		{`//person/@id = "person2"`, true}, // existential
		{`//person/income > 100000`, true}, // existential numeric
		{`//person/income < 1`, false},
		{`//person/name = //item/name`, false}, // nodeset vs nodeset
		{`count(//bidder) = 3`, true},
	}
	for name, v := range views(t) {
		for _, c := range cases {
			e, err := Parse(c.q)
			if err != nil {
				t.Fatalf("parse %q: %v", c.q, err)
			}
			val, err := e.Eval(v)
			if err != nil {
				t.Fatalf("eval %q: %v", c.q, err)
			}
			if got := BoolOf(val); got != c.want {
				t.Errorf("[%s] %s = %v, want %v", name, c.q, got, c.want)
			}
		}
	}
}

func TestVariables(t *testing.T) {
	for name, v := range views(t) {
		e := MustParse(`//person[@id = $who]/name`)
		ns, err := e.SelectVars(v, map[string]Value{"who": String("person1")})
		if err != nil {
			t.Fatal(err)
		}
		if len(ns) != 1 || StringValue(v, ns[0]) != "Oleg Blanc" {
			t.Errorf("[%s] variable join failed: %v", name, ns)
		}
		if _, err := e.Select(v); err == nil {
			t.Errorf("[%s] unbound variable did not error", name)
		}
	}
}

func TestRelativeEvaluation(t *testing.T) {
	for name, v := range views(t) {
		persons, err := MustParse(`//person`).Select(v)
		if err != nil {
			t.Fatal(err)
		}
		withIncome := 0
		for _, p := range persons {
			val, err := MustParse(`income`).EvalAt(v, p, nil)
			if err != nil {
				t.Fatal(err)
			}
			if BoolOf(val) {
				withIncome++
			}
		}
		if withIncome != 2 {
			t.Errorf("[%s] relative income eval = %d, want 2", name, withIncome)
		}
		// ".." and "." steps.
		n, err := MustParse(`./name/..`).SelectAt(v, persons[0], nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(n) != 1 || n[0] != persons[0] {
			t.Errorf("[%s] ./name/.. = %v, want self", name, n)
		}
	}
}

func TestDocumentNodeSemantics(t *testing.T) {
	for name, v := range views(t) {
		// Parent of the root element is the document node.
		ns, err := MustParse(`/site/..`).Select(v)
		if err != nil {
			t.Fatal(err)
		}
		if len(ns) != 1 || ns[0] != DocNode() {
			t.Errorf("[%s] /site/.. = %v, want document node", name, ns)
		}
		// The document node's string value is the whole text.
		if got := evalString(t, v, `string(/)`); !strings.Contains(got, "Kasidit Treweek") {
			t.Errorf("[%s] string(/) missing text: %q", name, got)
		}
	}
}

func TestNumberEdgeCases(t *testing.T) {
	for _, v := range views(t) {
		e := MustParse(`number("zzz")`)
		val, err := e.Eval(v)
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsNaN(float64(val.(Number))) {
			t.Errorf("number(zzz) = %v, want NaN", val)
		}
		if got := evalString(t, v, `string(1 div 0)`); got != "Infinity" {
			t.Errorf("1 div 0 = %q", got)
		}
		if got := evalString(t, v, `string(number("zzz"))`); got != "NaN" {
			t.Errorf("string(NaN) = %q", got)
		}
		break
	}
}

func TestParseErrors(t *testing.T) {
	for _, q := range []string{
		``, `/site[`, `//person[@id=]`, `foo(`, `1 +`, `$`, `"unterminated`,
		`/site/unknown::x`, `!`, `//person]`, `processing-instruction(3)`,
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	for _, v := range views(t) {
		for _, q := range []string{
			`count(1)`, `sum("x")`, `(1)[2]`, `1/x`, `nosuchfn()`,
			`count()`, `contains("a")`,
		} {
			e, err := Parse(q)
			if err != nil {
				continue // parse-time rejection is fine too
			}
			if _, err := e.Eval(v); err == nil {
				t.Errorf("Eval(%q) succeeded, want error", q)
			}
		}
		break
	}
}

func TestExprString(t *testing.T) {
	e := MustParse(`/site//person[@id="p"][2]/name`)
	s := e.String()
	for _, frag := range []string{"descendant-or-self", "child::person", "attribute::id", "child::name"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q, missing %q", s, frag)
		}
	}
	if e.Source() == "" {
		t.Error("Source() empty")
	}
}

func TestKindTests(t *testing.T) {
	doc := `<r><p>text<!--c--><?tgt body?></p></r>`
	tr, err := shred.Parse(strings.NewReader(doc), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := rostore.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := evalCount(t, v, `//comment()`); got != 1 {
		t.Errorf("//comment() = %d", got)
	}
	if got := evalCount(t, v, `//processing-instruction()`); got != 1 {
		t.Errorf("//processing-instruction() = %d", got)
	}
	if got := evalCount(t, v, `//processing-instruction("tgt")`); got != 1 {
		t.Errorf("//processing-instruction('tgt') = %d", got)
	}
	if got := evalCount(t, v, `//processing-instruction("other")`); got != 0 {
		t.Errorf("//processing-instruction('other') = %d", got)
	}
	if got := evalString(t, v, `string(//p/text())`); got != "text" {
		t.Errorf("//p/text() = %q", got)
	}
}

// The updatable store must keep answering identically after updates that
// shift tuples and splice pages.
func TestQueriesAfterUpdates(t *testing.T) {
	tr, err := shred.Parse(strings.NewReader(sampleDoc), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	up, err := core.Build(tr, core.Options{PageSize: 8, FillFactor: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	people, err := MustParse(`/site/people`).Select(up)
	if err != nil {
		t.Fatal(err)
	}
	frag, err := shred.ParseFragment(
		`<person id="person3"><name>New Person</name><income>99999</income></person>`,
		shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := up.AppendChild(people[0].Pre, frag); err != nil {
		t.Fatal(err)
	}
	if got := evalCount(t, up, `//person`); got != 4 {
		t.Fatalf("persons after insert = %d, want 4", got)
	}
	if got := evalString(t, up, `string(//person[@id="person3"]/name)`); got != "New Person" {
		t.Fatalf("new person name = %q", got)
	}
	if got := evalCount(t, up, `/site/people/person[income > 50000]`); got != 2 {
		t.Fatalf("rich persons = %d, want 2", got)
	}
	// Delete one and re-check.
	target, err := MustParse(`//person[@id="person0"]`).Select(up)
	if err != nil {
		t.Fatal(err)
	}
	if err := up.Delete(target[0].Pre); err != nil {
		t.Fatal(err)
	}
	if got := evalCount(t, up, `//person`); got != 3 {
		t.Fatalf("persons after delete = %d, want 3", got)
	}
	if got := evalCount(t, up, `//person[@id="person0"]`); got != 0 {
		t.Fatalf("deleted person still found")
	}
}
