package xpath

// The sequence-at-a-time plan runtime.
//
// A pathPlan pipes a whole context sequence through one operator per
// location step. Tree-node contexts flow as ascending pre sequences
// through the staircase join (staircase.EvalAxis), which applies the
// paper's context pruning — a context node whose region was already
// scanned is skipped, so no tuple is inspected twice — and returns
// results already in document order, eliminating the per-step
// sort/dedupe of the node-at-a-time path. The virtual document node and
// attribute nodes (rare mid-path) are split off and routed through the
// per-node evaluator, then merged back in document order.

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"mxq/internal/staircase"
	"mxq/internal/xenc"
)

// errNumericPred signals that a dynamically typed (untypable at compile
// time, e.g. a bare variable) predicate evaluated to a number at
// runtime. Numeric predicates select by per-context position, which the
// merged sequence cannot number; planStep.apply catches the sentinel and
// reruns the step node-at-a-time. It never escapes the plan runtime.
var errNumericPred = errors.New("xpath: dynamic predicate is numeric")

// planEnabled gates the compiled pipeline globally. It exists so the
// differential fuzzer and the old-vs-new pipeline benchmarks can compare
// the two evaluation strategies on identical expressions; production
// code never turns it off.
var planEnabled atomic.Bool

func init() { planEnabled.Store(true) }

// SetPlanEnabled toggles the sequence-at-a-time pipeline and returns
// the previous setting (a testing/benchmarking hook; evaluation falls
// back to the node-at-a-time interpreter when disabled).
func SetPlanEnabled(on bool) bool { return planEnabled.Swap(on) }

// stepKind is the execution strategy of one compiled step.
type stepKind int

const (
	// opSeq evaluates the whole context sequence through one staircase
	// operator; sequence-safe predicates filter the merged result.
	opSeq stepKind = iota
	// opFusedPos is opSeq with a leading positional predicate fused into
	// the scan: each context node's scan stops at its pos-th match.
	opFusedPos
	// opPerNode keeps the node-at-a-time path (positional predicates on
	// reverse axes, last(), statically untypable predicates).
	opPerNode
)

// planStep is one compiled location step.
type planStep struct {
	st       step // axis, node test, and the original predicate list
	kind     stepKind
	pos      int    // the fused positional predicate (kind == opFusedPos)
	seqPreds []expr // position-free predicates applied over the sequence
	fused    bool   // collapsed from descendant-or-self::node()/...
	dyn      bool   // some seqPred is untypable: numeric fallback may fire
}

// pathPlan is the compiled pipeline for one location path.
type pathPlan struct {
	steps []planStep
}

// seqCtx is the inter-step context representation. Pure tree-node
// sequences — every context after the first step of almost every query —
// travel as raw pre ranks between sequence steps, so consecutive
// staircase operators chain without wrapping each node into a NodeSet
// and unwrapping it again; the NodeSet form appears only when the
// document node or attribute nodes are in play, or a per-node step runs.
type seqCtx struct {
	pure  bool
	pres  []xenc.Pre // valid when pure
	nodes NodeSet    // valid when !pure
}

func (sc seqCtx) empty() bool {
	if sc.pure {
		return len(sc.pres) == 0
	}
	return len(sc.nodes) == 0
}

func (sc seqCtx) nodeSet() NodeSet {
	if !sc.pure {
		return sc.nodes
	}
	out := make(NodeSet, len(sc.pres))
	for i, p := range sc.pres {
		out[i] = ElemNode(p)
	}
	return out
}

// run pipes the context sequence through every step.
func (pl *pathPlan) run(c *context, ctx NodeSet) (NodeSet, error) {
	if !nodesOrdered(ctx) {
		// Initial contexts normally arrive sorted; a variable bound to an
		// unordered node-set is the exception, and the staircase contract
		// requires ascending duplicate-free input.
		ctx = sortDedupe(append(NodeSet{}, ctx...))
	}
	sc := seqCtx{nodes: ctx}
	var err error
	for i := range pl.steps {
		sc, err = pl.steps[i].apply(c, sc)
		if err != nil {
			return nil, err
		}
		if sc.empty() {
			return NodeSet{}, nil
		}
	}
	return sc.nodeSet(), nil
}

// apply evaluates one compiled step over the whole context sequence.
func (ps *planStep) apply(c *context, sc seqCtx) (seqCtx, error) {
	if ps.kind == opPerNode {
		ns, err := applyStep(c, sc.nodeSet(), &ps.st)
		return seqCtx{nodes: ns}, err
	}
	out, err := ps.applySeq(c, sc)
	if err == errNumericPred {
		// A dyn predicate turned out numeric at runtime: numeric
		// predicates select by per-context position, so rerun the whole
		// step node-at-a-time, whose numbering defines those semantics.
		ns, perr := applyStep(c, sc.nodeSet(), &ps.st)
		return seqCtx{nodes: ns}, perr
	}
	return out, err
}

// applySeq is the sequence-level strategy of apply; it reports
// errNumericPred when a dyn predicate must be renumbered per context.
func (ps *planStep) applySeq(c *context, sc seqCtx) (seqCtx, error) {
	pres := sc.pres
	var special NodeSet
	if !sc.pure {
		pres, special = splitContext(sc.nodes)
	}
	var out seqCtx
	if len(pres) > 0 {
		var err error
		if ps.st.axis == AxisAttribute {
			var ns NodeSet
			ns, err = ps.attrSeq(c, pres)
			out = seqCtx{nodes: ns}
		} else {
			out, err = ps.treeSeq(c, pres)
		}
		if err != nil {
			return seqCtx{}, err
		}
	} else {
		out = seqCtx{pure: true}
	}
	if len(special) > 0 {
		// The document node and attribute nodes go through the per-node
		// evaluator (each is a singleton scan; no overlap to prune).
		sp, err := applyStep(c, special, &ps.st)
		if err != nil {
			return seqCtx{}, err
		}
		out = seqCtx{nodes: mergeNodes(out.nodeSet(), sp)}
	}
	return out, nil
}

// treeSeq runs a tree axis over an ascending pre sequence. The result
// stays in the pure pre representation unless the virtual document node
// joins it (parent/ancestor axes under a node() test).
func (ps *planStep) treeSeq(c *context, pres []xenc.Pre) (seqCtx, error) {
	v := c.view
	test := treeTest(v, &ps.st)
	var cands []xenc.Pre
	if ps.kind == opFusedPos {
		cands = fusedPosScan(v, pres, ps.st.axis, test, ps.pos)
	} else {
		cands = staircase.EvalAxis(v, pres, seqAxis(ps.st.axis), test)
	}
	// The document node is an ancestor of every tree node.
	withDoc := false
	if ps.st.tk == testNode {
		switch ps.st.axis {
		case AxisParent:
			withDoc = hasRootContext(v, pres)
		case AxisAncestor, AxisAncestorOrSelf:
			withDoc = true
		}
	}
	if !withDoc {
		var err error
		for _, pred := range ps.seqPreds {
			if cands, err = filterPres(c, cands, pred, ps.dyn); err != nil {
				return seqCtx{}, err
			}
		}
		return seqCtx{pure: true, pres: cands}, nil
	}
	out := make(NodeSet, 0, len(cands)+1)
	out = append(out, DocNode())
	for _, p := range cands {
		out = append(out, ElemNode(p))
	}
	out, err := ps.filterSeqPreds(c, out)
	return seqCtx{nodes: out}, err
}

// filterPres is filterSeqPreds over the pure pre representation: one
// sequence-safe predicate, filtered in place with a reusable scratch
// context. dyn marks a predicate whose type only runtime knows: a
// numeric value makes it positional, which the merged sequence cannot
// honor, so the step falls back via errNumericPred.
func filterPres(c *context, pres []xenc.Pre, pred expr, dyn bool) ([]xenc.Pre, error) {
	sub := context{view: c.view, vars: c.vars, size: len(pres)}
	w := 0
	for i, p := range pres {
		sub.node = ElemNode(p)
		sub.pos = i + 1
		val, err := pred.eval(&sub)
		if err != nil {
			return nil, err
		}
		if dyn {
			if _, isNum := val.(Number); isNum {
				return nil, errNumericPred
			}
		}
		if BoolOf(val) {
			pres[w] = p
			w++
		}
	}
	return pres[:w], nil
}

// attrSeq runs the attribute axis over an ascending element sequence.
// Distinct elements own distinct attributes, so the output is already in
// document order — no sort, no dedupe.
func (ps *planStep) attrSeq(c *context, pres []xenc.Pre) (NodeSet, error) {
	v := c.view
	var out NodeSet
	for _, p := range pres {
		if v.Kind(p) != xenc.KindElem {
			continue
		}
		attrs := v.Attrs(p)
		count := 0
		for i := range attrs {
			if !ps.attrMatches(v, attrs[i].Name) {
				continue
			}
			count++
			if ps.kind == opFusedPos {
				if count == ps.pos {
					out = append(out, Node{Pre: p, Attr: int32(i)})
					break
				}
				continue
			}
			out = append(out, Node{Pre: p, Attr: int32(i)})
		}
	}
	return ps.filterSeqPreds(c, out)
}

// attrMatches mirrors the attribute node test of the per-node path.
func (ps *planStep) attrMatches(v xenc.DocView, name int32) bool {
	switch ps.st.tk {
	case testNode:
		return true
	case testName:
		return ps.st.name == "" || v.Names().Name(name) == ps.st.name
	}
	return false
}

// filterSeqPreds applies the sequence-safe predicates, filtering in
// place with one reusable scratch context. Compilation guarantees the
// predicates never consult position() or last() and never evaluate to a
// number, so every node's verdict is independent of the numbering the
// per-node path would have assigned.
func (ps *planStep) filterSeqPreds(c *context, ns NodeSet) (NodeSet, error) {
	for _, pred := range ps.seqPreds {
		sub := context{view: c.view, vars: c.vars, size: len(ns)}
		w := 0
		for i, n := range ns {
			sub.node = n
			sub.pos = i + 1
			val, err := pred.eval(&sub)
			if err != nil {
				return nil, err
			}
			if ps.dyn {
				if _, isNum := val.(Number); isNum {
					return nil, errNumericPred
				}
			}
			if BoolOf(val) {
				ns[w] = n
				w++
			}
		}
		ns = ns[:w]
	}
	return ns, nil
}

// fusedPosScan evaluates axis::test[k] with the positional predicate
// fused into the scan: every context node enumerates its axis in
// document order, counts matches, keeps its k-th and stops there. No
// context pruning applies (each context node numbers its own
// candidates), but the early exit bounds each scan by k matches.
func fusedPosScan(v xenc.DocView, ctx []xenc.Pre, ax Axis, t staircase.Test, k int) []xenc.Pre {
	var out []xenc.Pre
	sorted := true
	last := xenc.Pre(-1)
	for _, c := range ctx {
		count := 0
		staircase.Scan(v, c, seqAxis(ax), t, func(p xenc.Pre) bool {
			count++
			if count < k {
				return true
			}
			if p <= last {
				sorted = false
			}
			last = p
			out = append(out, p)
			return false
		})
	}
	if !sorted {
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		w := 1
		for i := 1; i < len(out); i++ {
			if out[i] != out[i-1] {
				out[w] = out[i]
				w++
			}
		}
		out = out[:w]
	}
	return out
}

// seqAxis maps an XPath tree axis to its staircase operator.
func seqAxis(a Axis) staircase.Axis {
	switch a {
	case AxisSelf:
		return staircase.AxisSelf
	case AxisChild:
		return staircase.AxisChild
	case AxisDescendant:
		return staircase.AxisDescendant
	case AxisDescendantOrSelf:
		return staircase.AxisDescendantOrSelf
	case AxisParent:
		return staircase.AxisParent
	case AxisAncestor:
		return staircase.AxisAncestor
	case AxisAncestorOrSelf:
		return staircase.AxisAncestorOrSelf
	case AxisFollowing:
		return staircase.AxisFollowing
	case AxisFollowingSibling:
		return staircase.AxisFollowingSibling
	case AxisPreceding:
		return staircase.AxisPreceding
	case AxisPrecedingSibling:
		return staircase.AxisPrecedingSibling
	}
	panic(fmt.Sprintf("xpath: no staircase operator for axis %v", a))
}

// splitContext separates tree nodes (which flow through the staircase
// operators) from the document node and attribute nodes (which keep the
// per-node path). The all-tree case — every context after the first
// step of almost every query — allocates exactly once.
func splitContext(ctx NodeSet) ([]xenc.Pre, NodeSet) {
	allTree := true
	for _, n := range ctx {
		if n.Attr != NoAttr || n.Pre == DocNodePre {
			allTree = false
			break
		}
	}
	if allTree {
		pres := make([]xenc.Pre, len(ctx))
		for i, n := range ctx {
			pres[i] = n.Pre
		}
		return pres, nil
	}
	var pres []xenc.Pre
	var special NodeSet
	for _, n := range ctx {
		if n.Attr == NoAttr && n.Pre != DocNodePre {
			pres = append(pres, n.Pre)
		} else {
			special = append(special, n)
		}
	}
	return pres, special
}

// hasRootContext reports whether any context node is at level 0 (whose
// parent is the virtual document node).
func hasRootContext(v xenc.DocView, pres []xenc.Pre) bool {
	for _, p := range pres {
		if v.Level(p) == 0 {
			return true
		}
	}
	return false
}

// mergeNodes merges two document-ordered node sets.
func mergeNodes(a, b NodeSet) NodeSet {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	return sortDedupe(append(a, b...))
}

// nodesOrdered reports whether ns is strictly ascending in document
// order (the staircase input contract).
func nodesOrdered(ns NodeSet) bool {
	for i := 1; i < len(ns); i++ {
		if !ns[i-1].Before(ns[i]) {
			return false
		}
	}
	return true
}

// --- explain ---------------------------------------------------------------

// Explain renders the compiled evaluation plan: one line per location
// step showing the operator the step lowers to — a sequence-level
// staircase scan (seq), a scan with a fused early-exit positional
// counter (seq pos=n), or the node-at-a-time fallback (per-node) — plus
// the count of predicates applied over the sequence. Paths nested in
// predicates and function arguments are rendered indented below their
// parent.
func (e *Expr) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n", e.root)
	explainExpr(&b, e.root, 0)
	return b.String()
}

func (ps *planStep) mode() string {
	switch ps.kind {
	case opSeq:
		s := "seq"
		if ps.fused {
			s += " (fused //)"
		}
		if len(ps.seqPreds) > 0 {
			s += fmt.Sprintf(", %d seq filter(s)", len(ps.seqPreds))
		}
		if ps.dyn {
			s += " (dyn: numeric falls back per-node)"
		}
		return s
	case opFusedPos:
		s := fmt.Sprintf("seq, early-exit pos=%d", ps.pos)
		if ps.fused {
			s += " (fused //)"
		}
		if len(ps.seqPreds) > 0 {
			s += fmt.Sprintf(", %d seq filter(s)", len(ps.seqPreds))
		}
		return s
	default:
		return "per-node"
	}
}

func explainExpr(b *strings.Builder, e expr, depth int) {
	indent := strings.Repeat("  ", depth)
	switch x := e.(type) {
	case *pathExpr:
		if x.start != nil {
			fmt.Fprintf(b, "%sstart: %s\n", indent, x.start)
			explainExpr(b, x.start, depth+1)
		}
		for i := range x.plan.steps {
			ps := &x.plan.steps[i]
			fmt.Fprintf(b, "%sstep %d: %-36s %s\n", indent, i+1, ps.st.String(), ps.mode())
			for _, pr := range ps.st.preds {
				explainExpr(b, pr, depth+1)
			}
		}
	case *filterExpr:
		explainExpr(b, x.base, depth)
		for i, p := range x.preds {
			mode := "per-node (positional)"
			if i < len(x.seq) && x.seq[i] {
				mode = "seq (in-place)"
			}
			fmt.Fprintf(b, "%sfilter [%s]: %s\n", indent, p, mode)
			explainExpr(b, p, depth+1)
		}
	case *binaryExpr:
		explainExpr(b, x.l, depth)
		explainExpr(b, x.r, depth)
	case *negExpr:
		explainExpr(b, x.e, depth)
	case *unionExpr:
		explainExpr(b, x.l, depth)
		explainExpr(b, x.r, depth)
	case *funcCall:
		for _, a := range x.args {
			explainExpr(b, a, depth)
		}
	}
}
