package xpath

import (
	"fmt"
	"strings"
)

// Axis identifies an XPath axis.
type Axis int

// The supported axes.
const (
	AxisChild Axis = iota
	AxisDescendant
	AxisDescendantOrSelf
	AxisParent
	AxisAncestor
	AxisAncestorOrSelf
	AxisFollowing
	AxisFollowingSibling
	AxisPreceding
	AxisPrecedingSibling
	AxisSelf
	AxisAttribute
)

var axisNames = map[string]Axis{
	"child":              AxisChild,
	"descendant":         AxisDescendant,
	"descendant-or-self": AxisDescendantOrSelf,
	"parent":             AxisParent,
	"ancestor":           AxisAncestor,
	"ancestor-or-self":   AxisAncestorOrSelf,
	"following":          AxisFollowing,
	"following-sibling":  AxisFollowingSibling,
	"preceding":          AxisPreceding,
	"preceding-sibling":  AxisPrecedingSibling,
	"self":               AxisSelf,
	"attribute":          AxisAttribute,
}

func (a Axis) String() string {
	for n, ax := range axisNames {
		if ax == a {
			return n
		}
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// Reverse reports whether the axis enumerates in reverse document order
// (which governs positional predicate numbering).
func (a Axis) Reverse() bool {
	switch a {
	case AxisParent, AxisAncestor, AxisAncestorOrSelf, AxisPreceding, AxisPrecedingSibling:
		return true
	}
	return false
}

// testKind is the node-test category of a step.
type testKind int

const (
	testName    testKind = iota // name or *
	testNode                    // node()
	testText                    // text()
	testComment                 // comment()
	testPI                      // processing-instruction(target?)
)

// step is one location step: axis::test[pred]...
type step struct {
	axis  Axis
	tk    testKind
	name  string // element/attribute name ("" = *), or PI target
	preds []expr
}

func (s step) String() string {
	var b strings.Builder
	b.WriteString(s.axis.String())
	b.WriteString("::")
	switch s.tk {
	case testName:
		if s.name == "" {
			b.WriteString("*")
		} else {
			b.WriteString(s.name)
		}
	case testNode:
		b.WriteString("node()")
	case testText:
		b.WriteString("text()")
	case testComment:
		b.WriteString("comment()")
	case testPI:
		fmt.Fprintf(&b, "processing-instruction(%s)", s.name)
	}
	for _, p := range s.preds {
		fmt.Fprintf(&b, "[%s]", p)
	}
	return b.String()
}

// expr is an AST node.
type expr interface {
	fmt.Stringer
	eval(c *context) (Value, error)
}

// pathExpr is a location path, optionally rooted at another expression
// (filter/path composition: primary[pred]/step/...).
type pathExpr struct {
	absolute bool // starts at the document node
	start    expr // nil for pure location paths
	steps    []step

	// plan is the compiled sequence-at-a-time pipeline for the steps,
	// attached by compilePlans after parsing (see compile.go). It is
	// immutable after Parse and shared by concurrent evaluations.
	plan *pathPlan
}

func (p *pathExpr) String() string {
	var b strings.Builder
	if p.start != nil {
		b.WriteString(p.start.String())
	}
	if p.absolute {
		b.WriteString("/")
	}
	for i, s := range p.steps {
		if i > 0 || p.start != nil {
			b.WriteString("/")
		}
		b.WriteString(s.String())
	}
	return b.String()
}

type numberLit float64

func (n numberLit) String() string { return fmt.Sprintf("%g", float64(n)) }

type stringLit string

func (s stringLit) String() string { return fmt.Sprintf("%q", string(s)) }

type varRef string

func (v varRef) String() string { return "$" + string(v) }

type binaryExpr struct {
	op   string
	l, r expr
}

func (b *binaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", b.l, b.op, b.r)
}

type negExpr struct{ e expr }

func (n *negExpr) String() string { return fmt.Sprintf("-(%s)", n.e) }

type unionExpr struct{ l, r expr }

func (u *unionExpr) String() string { return fmt.Sprintf("%s | %s", u.l, u.r) }

type funcCall struct {
	name string
	args []expr
}

func (f *funcCall) String() string {
	parts := make([]string, len(f.args))
	for i, a := range f.args {
		parts[i] = a.String()
	}
	return f.name + "(" + strings.Join(parts, ", ") + ")"
}

// filterExpr is a primary expression with predicates.
type filterExpr struct {
	base  expr
	preds []expr

	// seq marks, per predicate, whether it is position-free and filters
	// the base sequence in place; ownedBase whether the base's result
	// may be mutated without a defensive copy. Both are attached by
	// compilePlans (see classifyFilter in compile.go).
	seq       []bool
	ownedBase bool
}

func (f *filterExpr) String() string {
	var b strings.Builder
	b.WriteString(f.base.String())
	for _, p := range f.preds {
		fmt.Fprintf(&b, "[%s]", p)
	}
	return b.String()
}
