package staircase

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"mxq/internal/core"
	"mxq/internal/rostore"
	"mxq/internal/shred"
	"mxq/internal/xenc"
)

const paperDoc = `<a><b><c><d/><e/></c></b><f><g/><h><i/><j/></h></f></a>`

// oracle recomputes every axis with plain tree semantics (parent array
// built by a stack over the live view), independent of sizes and runs.
type oracle struct {
	pres   []xenc.Pre
	parent map[xenc.Pre]xenc.Pre
	index  map[xenc.Pre]int
}

func newOracle(v xenc.DocView) *oracle {
	o := &oracle{parent: map[xenc.Pre]xenc.Pre{}, index: map[xenc.Pre]int{}}
	var stack []xenc.Pre
	for p := xenc.SkipFree(v, 0); p < v.Len(); p = xenc.SkipFree(v, p+1) {
		lvl := v.Level(p)
		stack = stack[:lvl]
		if lvl == 0 {
			o.parent[p] = xenc.NoPre
		} else {
			o.parent[p] = stack[lvl-1]
		}
		stack = append(stack, p)
		o.index[p] = len(o.pres)
		o.pres = append(o.pres, p)
	}
	return o
}

func (o *oracle) isAncestor(a, d xenc.Pre) bool {
	for p := o.parent[d]; p != xenc.NoPre; p = o.parent[p] {
		if p == a {
			return true
		}
	}
	return false
}

func (o *oracle) axis(name string, ctx []xenc.Pre) []xenc.Pre {
	in := func(p xenc.Pre) bool {
		for _, c := range ctx {
			switch name {
			case "self":
				if p == c {
					return true
				}
			case "child":
				if o.parent[p] == c {
					return true
				}
			case "parent":
				if o.parent[c] == p {
					return true
				}
			case "descendant":
				if o.isAncestor(c, p) {
					return true
				}
			case "descendant-or-self":
				if p == c || o.isAncestor(c, p) {
					return true
				}
			case "ancestor":
				if o.isAncestor(p, c) {
					return true
				}
			case "ancestor-or-self":
				if p == c || o.isAncestor(p, c) {
					return true
				}
			case "following-sibling":
				if o.parent[p] == o.parent[c] && o.parent[c] != xenc.NoPre && p > c {
					return true
				}
			case "preceding-sibling":
				if o.parent[p] == o.parent[c] && o.parent[c] != xenc.NoPre && p < c {
					return true
				}
			case "following":
				if p > c && !o.isAncestor(c, p) && !o.isAncestor(p, c) {
					return true
				}
			case "preceding":
				if p < c && !o.isAncestor(c, p) && !o.isAncestor(p, c) {
					return true
				}
			}
		}
		return false
	}
	var out []xenc.Pre
	for _, p := range o.pres {
		if in(p) {
			out = append(out, p)
		}
	}
	return out
}

var axisFuncs = map[string]func(xenc.DocView, []xenc.Pre, Test) []xenc.Pre{
	"self":               Self,
	"child":              Child,
	"parent":             Parent,
	"descendant":         Descendant,
	"descendant-or-self": DescendantOrSelf,
	"ancestor":           Ancestor,
	"ancestor-or-self":   AncestorOrSelf,
	"following-sibling":  FollowingSibling,
	"preceding-sibling":  PrecedingSibling,
	"following":          Following,
	"preceding":          Preceding,
}

var axisIDs = map[string]Axis{
	"self":               AxisSelf,
	"child":              AxisChild,
	"parent":             AxisParent,
	"descendant":         AxisDescendant,
	"descendant-or-self": AxisDescendantOrSelf,
	"ancestor":           AxisAncestor,
	"ancestor-or-self":   AxisAncestorOrSelf,
	"following-sibling":  AxisFollowingSibling,
	"preceding-sibling":  AxisPrecedingSibling,
	"following":          AxisFollowing,
	"preceding":          AxisPreceding,
}

// forwardScanAxes are the axes Scan supports.
var forwardScanAxes = []string{
	"self", "child", "descendant", "descendant-or-self",
	"following-sibling", "following",
}

func checkAllAxes(t *testing.T, v xenc.DocView, label string) {
	t.Helper()
	o := newOracle(v)
	rng := rand.New(rand.NewSource(7))
	// Single-node contexts for every node, plus random multi-node ones.
	var ctxs [][]xenc.Pre
	for _, p := range o.pres {
		ctxs = append(ctxs, []xenc.Pre{p})
	}
	for i := 0; i < 12; i++ {
		n := 1 + rng.Intn(4)
		set := map[xenc.Pre]bool{}
		for j := 0; j < n; j++ {
			set[o.pres[rng.Intn(len(o.pres))]] = true
		}
		var ctx []xenc.Pre
		for p := range set {
			ctx = append(ctx, p)
		}
		sort.Slice(ctx, func(a, b int) bool { return ctx[a] < ctx[b] })
		ctxs = append(ctxs, ctx)
	}
	for name, fn := range axisFuncs {
		for _, ctx := range ctxs {
			got := fn(v, ctx, AnyNode())
			want := o.axis(name, ctx)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: %s(%v) = %v, want %v", label, name, ctx, got, want)
			}
			// The sequence-level dispatcher must agree with the direct
			// operator call.
			if viaEval := EvalAxis(v, ctx, axisIDs[name], AnyNode()); !reflect.DeepEqual(viaEval, got) {
				t.Fatalf("%s: EvalAxis(%s, %v) = %v, want %v", label, name, ctx, viaEval, got)
			}
		}
	}
	// Scan must enumerate forward axes in document order and honor the
	// early-exit: stopping after k matches yields the k-prefix.
	for _, name := range forwardScanAxes {
		ax := axisIDs[name]
		for _, p := range o.pres {
			full := o.axis(name, []xenc.Pre{p})
			var scanned []xenc.Pre
			Scan(v, p, ax, AnyNode(), func(q xenc.Pre) bool {
				scanned = append(scanned, q)
				return true
			})
			if !reflect.DeepEqual(scanned, full) && (len(scanned) != 0 || len(full) != 0) {
				t.Fatalf("%s: Scan(%s, %d) = %v, want %v", label, name, p, scanned, full)
			}
			for k := 1; k <= 2 && k <= len(full); k++ {
				var prefix []xenc.Pre
				Scan(v, p, ax, AnyNode(), func(q xenc.Pre) bool {
					prefix = append(prefix, q)
					return len(prefix) < k
				})
				if !reflect.DeepEqual(prefix, full[:k]) {
					t.Fatalf("%s: Scan(%s, %d) early-exit %d = %v, want %v", label, name, p, k, prefix, full[:k])
				}
			}
		}
	}
}

func TestAxesOnReadOnlyStore(t *testing.T) {
	tr, err := shred.Parse(strings.NewReader(paperDoc), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := rostore.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	checkAllAxes(t, s, "rostore")
}

func TestAxesOnPagedStoreWithHoles(t *testing.T) {
	tr, err := shred.Parse(strings.NewReader(paperDoc), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Build(tr, core.Options{PageSize: 8, FillFactor: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	checkAllAxes(t, s, "core/fresh")
	// Punch holes: delete c (a 3-node subtree), then reinsert content so
	// free runs sit in the middle of regions.
	var c xenc.Pre = -1
	for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
		if s.Kind(p) == xenc.KindElem && s.Names().Name(s.Name(p)) == "c" {
			c = p
		}
	}
	if err := s.Delete(c); err != nil {
		t.Fatal(err)
	}
	checkAllAxes(t, s, "core/after-delete")
	frag, err := shred.ParseFragment(`<c2><d2/></c2>`, shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b xenc.Pre = -1
	for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
		if s.Kind(p) == xenc.KindElem && s.Names().Name(s.Name(p)) == "b" {
			b = p
		}
	}
	if _, err := s.AppendChild(b, frag); err != nil {
		t.Fatal(err)
	}
	checkAllAxes(t, s, "core/after-reinsert")
}

// TestAxesRandomisedAgainstOracle builds random documents, mutates the
// paged store randomly, and cross-checks every axis after every step.
func TestAxesRandomisedAgainstOracle(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := shred.NewBuilder()
		b.Start("root")
		depth := 1
		for i := 0; i < 40+rng.Intn(40); i++ {
			switch rng.Intn(3) {
			case 0:
				b.Start(fmt.Sprintf("e%d", rng.Intn(3)))
				depth++
			case 1:
				b.Text("t")
			default:
				if depth > 1 {
					b.End()
					depth--
				} else {
					b.Elem("leaf", "")
				}
			}
		}
		for depth > 0 {
			b.End()
			depth--
		}
		s, err := core.Build(b.Tree(), core.Options{PageSize: 16, FillFactor: 0.75})
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 10; step++ {
			var live []xenc.Pre
			for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
				live = append(live, p)
			}
			target := live[rng.Intn(len(live))]
			frag, _ := shred.ParseFragment(`<n><m/>x</n>`, shred.Options{})
			switch {
			case rng.Intn(2) == 0 && target != s.Root():
				if err := s.Delete(target); err != nil {
					t.Fatal(err)
				}
			case s.Kind(target) == xenc.KindElem:
				if _, err := s.AppendChild(target, frag); err != nil {
					t.Fatal(err)
				}
			default:
				continue
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			checkAllAxes(t, s, fmt.Sprintf("seed%d/step%d", seed, step))
		}
	}
}

func TestNameAndKindTests(t *testing.T) {
	tr, err := shred.Parse(strings.NewReader(`<r><p>t1</p><q/><p a="1">t2</p><!--c--></r>`), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := rostore.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	pName, _ := s.Names().Lookup("p")
	ctx := []xenc.Pre{s.Root()}
	if got := Child(s, ctx, Element(pName)); len(got) != 2 {
		t.Fatalf("child::p = %v", got)
	}
	if got := Child(s, ctx, Element(xenc.NoName)); len(got) != 3 {
		t.Fatalf("child::* = %v", got)
	}
	if got := Descendant(s, ctx, KindTest(xenc.KindText)); len(got) != 2 {
		t.Fatalf("descendant::text() = %v", got)
	}
	if got := Child(s, ctx, KindTest(xenc.KindComment)); len(got) != 1 {
		t.Fatalf("child::comment() = %v", got)
	}
	if got := Child(s, ctx, AnyNode()); len(got) != 4 {
		t.Fatalf("child::node() = %v", got)
	}
}

func TestEmptyContext(t *testing.T) {
	tr, _ := shred.Parse(strings.NewReader(paperDoc), shred.Options{})
	s, _ := rostore.Build(tr)
	for name, fn := range axisFuncs {
		if got := fn(s, nil, AnyNode()); len(got) != 0 {
			t.Errorf("%s(nil) = %v", name, got)
		}
	}
}
