// Package staircase evaluates XPath axis steps over the pre/size/level
// encoding, following the staircase join of Grust, van Keulen and Teubner
// (VLDB 2003) as used by MonetDB/XQuery. The algorithms operate on the
// xenc.DocView interface only, so — like the original staircase join
// behind the memory-mapped pre/size/level view — they run unmodified on
// the read-only and on the paged updatable schema.
//
// The two tree-awareness tricks of the paper are implemented:
//
//   - positional skipping: children are found by hopping
//     pre += size(pre)+1 from sibling to sibling, and context nodes whose
//     region was already scanned are pruned, so no tuple is inspected
//     twice;
//   - free-space skipping: unused tuples are hopped over in O(1) per run
//     using the free-run lengths in their size column.
//
// The operators are *sequence-at-a-time*: every axis takes the whole
// context sequence and returns the whole result sequence, which is what
// lets the pruning fire at all — a caller that loops over single-node
// contexts re-scans every overlapping region once per context node and
// pays an O(n log n) merge per step on top. The contract on both sides
// is the same: context sequences are ascending pre ranks without
// duplicates (document order), and results are returned the same way,
// already merged — callers never sort or dedupe behind these operators.
// EvalAxis dispatches a sequence over any of the eleven tree axes; Scan
// enumerates a forward axis from a single context node with early exit
// (the hook positional predicates fuse into). The twelfth XPath axis
// (attribute) reads the side table, not the pre/size/level plane, and
// lives in the xpath layer.
package staircase

import (
	"sort"

	"mxq/internal/xenc"
)

// Axis identifies one of the eleven tree axes EvalAxis dispatches over.
type Axis int

// The tree axes. (attribute is not a tree axis: it reads the attribute
// side table and is handled by the caller.)
const (
	AxisSelf Axis = iota
	AxisChild
	AxisDescendant
	AxisDescendantOrSelf
	AxisParent
	AxisAncestor
	AxisAncestorOrSelf
	AxisFollowing
	AxisFollowingSibling
	AxisPreceding
	AxisPrecedingSibling
)

// EvalAxis applies one axis step to the whole context sequence: ctx is
// ascending pre ranks without duplicates, and the result is the same —
// document order, duplicate-free, with the paper's context pruning
// applied wherever the axis admits it.
func EvalAxis(v xenc.DocView, ctx []xenc.Pre, ax Axis, t Test) []xenc.Pre {
	switch ax {
	case AxisSelf:
		return Self(v, ctx, t)
	case AxisChild:
		return Child(v, ctx, t)
	case AxisDescendant:
		return Descendant(v, ctx, t)
	case AxisDescendantOrSelf:
		return DescendantOrSelf(v, ctx, t)
	case AxisParent:
		return Parent(v, ctx, t)
	case AxisAncestor:
		return Ancestor(v, ctx, t)
	case AxisAncestorOrSelf:
		return AncestorOrSelf(v, ctx, t)
	case AxisFollowing:
		return Following(v, ctx, t)
	case AxisFollowingSibling:
		return FollowingSibling(v, ctx, t)
	case AxisPreceding:
		return Preceding(v, ctx, t)
	case AxisPrecedingSibling:
		return PrecedingSibling(v, ctx, t)
	}
	return nil
}

// Scan enumerates a *forward* axis from a single context node in
// document order, calling fn for every node matching the test until fn
// returns false. It exists for fused positional predicates ([1], [n]):
// the caller counts matches and stops the scan at the n-th, so a
// first-child probe over a huge subtree inspects one tuple instead of
// the whole region. Supported axes: self, child, descendant,
// descendant-or-self, following-sibling, following; reverse axes
// enumerate against document order and are not scannable this way.
func Scan(v xenc.DocView, c xenc.Pre, ax Axis, t Test, fn func(xenc.Pre) bool) {
	n := v.Len()
	switch ax {
	case AxisSelf:
		if t.Matches(v, c) {
			fn(c)
		}
	case AxisChild:
		lvl := v.Level(c)
		for p := xenc.SkipFree(v, c+1); p < n && v.Level(p) > lvl; p = xenc.SkipFree(v, p+v.Size(p)+1) {
			if v.Level(p) == lvl+1 && t.Matches(v, p) && !fn(p) {
				return
			}
		}
	case AxisDescendant, AxisDescendantOrSelf:
		if ax == AxisDescendantOrSelf && t.Matches(v, c) && !fn(c) {
			return
		}
		remaining := v.Size(c)
		lvl := v.Level(c)
		p := c
		for remaining > 0 {
			p = xenc.SkipFree(v, p+1)
			if v.Level(p) <= lvl {
				break
			}
			if t.Matches(v, p) && !fn(p) {
				return
			}
			remaining--
		}
	case AxisFollowingSibling:
		lvl := v.Level(c)
		if lvl == 0 {
			return
		}
		for p := xenc.SkipFree(v, c+v.Size(c)+1); p < n && v.Level(p) >= lvl; p = xenc.SkipFree(v, p+v.Size(p)+1) {
			if v.Level(p) == lvl && t.Matches(v, p) && !fn(p) {
				return
			}
		}
	case AxisFollowing:
		for p := xenc.SkipFree(v, regionEnd(v, c)+1); p < n; p = xenc.SkipFree(v, p+1) {
			if t.Matches(v, p) && !fn(p) {
				return
			}
		}
	}
}

// Test is a node test: an optional kind filter and an optional name
// filter (interned qname id).
type Test struct {
	kindSet bool
	kind    xenc.Kind
	name    int32 // xenc.NoName matches any name
}

// AnyNode matches every node (node()).
func AnyNode() Test { return Test{name: xenc.NoName} }

// KindTest matches nodes of one kind regardless of name (text(),
// comment()).
func KindTest(k xenc.Kind) Test { return Test{kindSet: true, kind: k, name: xenc.NoName} }

// Element matches element nodes; name xenc.NoName means any element (*).
func Element(name int32) Test {
	return Test{kindSet: true, kind: xenc.KindElem, name: name}
}

// PITest matches processing instructions; target xenc.NoName matches all.
func PITest(target int32) Test {
	return Test{kindSet: true, kind: xenc.KindPI, name: target}
}

// Matches reports whether the used tuple at p satisfies the test.
func (t Test) Matches(v xenc.DocView, p xenc.Pre) bool {
	if t.kindSet {
		if v.Kind(p) != t.kind {
			return false
		}
		if t.name != xenc.NoName && v.Name(p) != t.name {
			return false
		}
	}
	return true
}

// Self filters the context sequence by the test.
func Self(v xenc.DocView, ctx []xenc.Pre, t Test) []xenc.Pre {
	var out []xenc.Pre
	for _, c := range ctx {
		if t.Matches(v, c) {
			out = append(out, c)
		}
	}
	return out
}

// Descendant returns the matching descendants of the context sequence in
// document order. Context nodes inside an already-scanned region are
// pruned (the staircase "pruning"), so the scan touches every result
// region exactly once.
func Descendant(v xenc.DocView, ctx []xenc.Pre, t Test) []xenc.Pre {
	var out []xenc.Pre
	high := xenc.Pre(-1) // last pre already covered by a scanned region
	for _, c := range ctx {
		if c <= high {
			continue // pruned: c lies inside a region scanned before
		}
		remaining := v.Size(c)
		lvl := v.Level(c)
		p := c
		for remaining > 0 {
			p = xenc.SkipFree(v, p+1)
			if v.Level(p) <= lvl {
				break // corrupt size would spin; defend
			}
			if t.Matches(v, p) {
				out = append(out, p)
			}
			remaining--
		}
		if p > high {
			high = p
		}
	}
	return out
}

// DescendantOrSelf is Descendant plus the matching context nodes.
func DescendantOrSelf(v xenc.DocView, ctx []xenc.Pre, t Test) []xenc.Pre {
	var out []xenc.Pre
	high := xenc.Pre(-1)
	for _, c := range ctx {
		if c <= high {
			continue
		}
		if t.Matches(v, c) {
			out = append(out, c)
		}
		remaining := v.Size(c)
		lvl := v.Level(c)
		p := c
		for remaining > 0 {
			p = xenc.SkipFree(v, p+1)
			if v.Level(p) <= lvl {
				break
			}
			if t.Matches(v, p) {
				out = append(out, p)
			}
			remaining--
		}
		if p > high {
			high = p
		}
	}
	return out
}

// Child returns the matching children of the context sequence, hopping
// from sibling to sibling with pre += size+1 ("finding all children of a
// node works by checking the first child and skipping to its siblings").
// With free space interleaved a hop may land inside the previous child's
// region; the level test detects that and the hop continues from there,
// so each extra hole costs at most one extra hop.
func Child(v xenc.DocView, ctx []xenc.Pre, t Test) []xenc.Pre {
	var out []xenc.Pre
	sorted := true
	last := xenc.Pre(-1)
	n := v.Len()
	for _, c := range ctx {
		lvl := v.Level(c)
		p := xenc.SkipFree(v, c+1)
		for p < n && v.Level(p) > lvl {
			if v.Level(p) == lvl+1 && t.Matches(v, p) {
				if p < last {
					sorted = false
				}
				last = p
				out = append(out, p)
			}
			p = xenc.SkipFree(v, p+v.Size(p)+1)
		}
	}
	if !sorted {
		sortPres(out)
	}
	return out
}

// Parent returns the distinct parents of the context sequence. Runs of
// sibling context nodes share a parent, so consecutive repeats are
// collapsed during the walk; the merge sort only fires when parents of
// later context nodes actually land out of order (cousin sequences).
func Parent(v xenc.DocView, ctx []xenc.Pre, t Test) []xenc.Pre {
	var out []xenc.Pre
	lastPar := xenc.NoPre
	sorted := true
	last := xenc.Pre(-1)
	for _, c := range ctx {
		p := parentOf(v, c)
		if p == lastPar {
			continue // sibling run: same parent as the previous context node
		}
		lastPar = p
		if p != xenc.NoPre && t.Matches(v, p) {
			if p <= last {
				sorted = false
			}
			last = p
			out = append(out, p)
		}
	}
	if !sorted {
		sortPres(out)
		out = dedupe(out)
	}
	return out
}

// Ancestor returns the distinct ancestors of the context sequence.
func Ancestor(v xenc.DocView, ctx []xenc.Pre, t Test) []xenc.Pre {
	seen := make(map[xenc.Pre]bool)
	var out []xenc.Pre
	for _, c := range ctx {
		for p := parentOf(v, c); p != xenc.NoPre; p = parentOf(v, p) {
			if seen[p] {
				break // the rest of the chain was walked before
			}
			seen[p] = true
			if t.Matches(v, p) {
				out = append(out, p)
			}
		}
	}
	sortPres(out)
	return out
}

// AncestorOrSelf is Ancestor plus the matching context nodes.
func AncestorOrSelf(v xenc.DocView, ctx []xenc.Pre, t Test) []xenc.Pre {
	out := Ancestor(v, ctx, t)
	out = append(out, Self(v, ctx, t)...)
	sortPres(out)
	return dedupe(out)
}

// FollowingSibling returns the matching following siblings. Sibling-run
// pruning: once one context node's sibling run is scanned, every later
// context node inside that run at the same level is itself a following
// sibling of the first — its results are a suffix of what was already
// emitted — so it is skipped without touching a tuple.
func FollowingSibling(v xenc.DocView, ctx []xenc.Pre, t Test) []xenc.Pre {
	var out []xenc.Pre
	n := v.Len()
	sorted := true
	last := xenc.Pre(-1)
	runHigh := xenc.Pre(-1) // last pre examined by the previous sibling scan
	runLvl := xenc.Level(-2)
	for _, c := range ctx {
		lvl := v.Level(c)
		if lvl == 0 {
			continue // the root has no siblings
		}
		if c <= runHigh && lvl == runLvl {
			continue // pruned: c is a sibling inside the run scanned before
		}
		p := xenc.SkipFree(v, c+v.Size(c)+1)
		for p < n && v.Level(p) >= lvl {
			if v.Level(p) == lvl && t.Matches(v, p) {
				if p <= last {
					sorted = false
				}
				last = p
				out = append(out, p)
			}
			p = xenc.SkipFree(v, p+v.Size(p)+1)
		}
		runHigh, runLvl = p-1, lvl
	}
	if !sorted {
		sortPres(out)
		out = dedupe(out)
	}
	return out
}

// PrecedingSibling returns the matching preceding siblings.
func PrecedingSibling(v xenc.DocView, ctx []xenc.Pre, t Test) []xenc.Pre {
	var out []xenc.Pre
	sorted := true
	last := xenc.Pre(-1)
	for _, c := range ctx {
		par := parentOf(v, c)
		if par == xenc.NoPre {
			continue
		}
		lvl := v.Level(c)
		p := xenc.SkipFree(v, par+1)
		for p < c {
			if v.Level(p) == lvl && t.Matches(v, p) {
				if p <= last {
					sorted = false
				}
				last = p
				out = append(out, p)
			}
			p = xenc.SkipFree(v, p+v.Size(p)+1)
		}
	}
	if !sorted {
		sortPres(out)
		out = dedupe(out)
	}
	return out
}

// Following returns everything after the context regions. The staircase
// observation: following(ctx) == following(c*) where c* is the context
// node whose region ends first, so one scan suffices.
func Following(v xenc.DocView, ctx []xenc.Pre, t Test) []xenc.Pre {
	if len(ctx) == 0 {
		return nil
	}
	// Ancestors of a node always precede it, so everything after the
	// earliest region end is in the following axis of the union.
	minEnd := xenc.Pre(-1)
	for _, c := range ctx {
		end := regionEnd(v, c)
		if minEnd < 0 || end < minEnd {
			minEnd = end
		}
	}
	var out []xenc.Pre
	n := v.Len()
	for p := xenc.SkipFree(v, minEnd+1); p < n; p = xenc.SkipFree(v, p+1) {
		if t.Matches(v, p) {
			out = append(out, p)
		}
	}
	return out
}

// Preceding returns everything before the context nodes except their
// ancestors. Dual staircase observation: preceding(ctx) ==
// preceding(max ctx).
func Preceding(v xenc.DocView, ctx []xenc.Pre, t Test) []xenc.Pre {
	if len(ctx) == 0 {
		return nil
	}
	c := ctx[len(ctx)-1]
	anc := make(map[xenc.Pre]bool)
	for p := parentOf(v, c); p != xenc.NoPre; p = parentOf(v, p) {
		anc[p] = true
	}
	var out []xenc.Pre
	for p := xenc.SkipFree(v, 0); p < c; p = xenc.SkipFree(v, p+1) {
		if !anc[p] && t.Matches(v, p) {
			out = append(out, p)
		}
	}
	return out
}

// parentOf finds the parent by the backward level scan: the nearest
// preceding used tuple with a smaller level is the parent in pre-order.
func parentOf(v xenc.DocView, c xenc.Pre) xenc.Pre {
	lvl := v.Level(c)
	if lvl == 0 {
		return xenc.NoPre
	}
	for p := c - 1; p >= 0; p-- {
		l := v.Level(p)
		if l != xenc.LevelUnused && l < lvl {
			return p
		}
	}
	return xenc.NoPre
}

// regionEnd returns the pre rank of the last live tuple in c's region (c
// itself for leaves).
func regionEnd(v xenc.DocView, c xenc.Pre) xenc.Pre {
	remaining := v.Size(c)
	last := c
	p := c
	for remaining > 0 {
		p = xenc.SkipFree(v, p+1)
		last = p
		remaining--
	}
	return last
}

func sortPres(s []xenc.Pre) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func dedupe(s []xenc.Pre) []xenc.Pre {
	if len(s) < 2 {
		return s
	}
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}
