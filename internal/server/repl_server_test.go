package server_test

import (
	"context"
	"errors"
	"net"
	"strconv"
	"testing"
	"time"

	"mxq"
	"mxq/client"
	"mxq/internal/server"
	"mxq/internal/wire"
)

// startFollower opens a follower database in its own directory,
// subscribes it to the primary, and serves it read-only on a loopback
// port.
func startFollower(t *testing.T, primaryAddr string, docs ...string) (addr string, fdb *mxq.Database) {
	t.Helper()
	var err error
	fdb, err = mxq.Open(mxq.Options{Dir: t.TempDir(), NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	var stops []func()
	for _, name := range docs {
		stop, err := fdb.FollowDocument(primaryAddr, name)
		if err != nil {
			t.Fatal(err)
		}
		stops = append(stops, stop)
	}
	srv := server.New(server.Config{DB: fdb, ReadOnly: true})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() {
		srv.Shutdown(5 * time.Second)
		for _, stop := range stops {
			stop()
		}
		fdb.Close()
	})
	return l.Addr().String(), fdb
}

// TestHelloNegotiation covers the handshake in both directions: an
// up-to-date client lands on the highest mutual version; a client
// announcing a version below the server's minimum is rejected typed; a
// v2 opcode on a session that never said Hello gets CodeVersion, not
// CodeBadRequest.
func TestHelloNegotiation(t *testing.T) {
	addr, _ := startServer(t, server.Config{})
	c := dial(t, addr)
	if got := c.Proto(); got != wire.MaxVersion {
		t.Fatalf("negotiated protocol = %d, want %d", got, wire.MaxVersion)
	}

	// Raw connection announcing version 0: typed rejection.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var p wire.PayloadBuilder
	p.Uvarint(0).Uvarint(0)
	if err := wire.WriteFrame(conn, wire.Frame{ID: 1, Op: wire.OpHello, Payload: p.Bytes()}); err != nil {
		t.Fatal(err)
	}
	f, err := wire.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Op != wire.CodeVersion {
		t.Fatalf("hello(v0) status = %d, want CodeVersion", f.Op)
	}

	// V2 opcode without a handshake: CodeVersion (so a client can tell
	// "old server" from "forgot the handshake"), and the session
	// survives.
	var q wire.PayloadBuilder
	q.String("lib")
	if err := wire.WriteFrame(conn, wire.Frame{ID: 2, Op: wire.OpDocStatus, Payload: q.Bytes()}); err != nil {
		t.Fatal(err)
	}
	if f, err = wire.ReadFrame(conn, 0); err != nil || f.Op != wire.CodeVersion {
		t.Fatalf("docstatus without hello = op %d, %v; want CodeVersion", f.Op, err)
	}
	if err := wire.WriteFrame(conn, wire.Frame{ID: 3, Op: wire.OpPing}); err != nil {
		t.Fatal(err)
	}
	if f, err = wire.ReadFrame(conn, 0); err != nil || f.Op != wire.StatusOK {
		t.Fatalf("ping after version rejection = op %d, %v", f.Op, err)
	}
}

// TestHelloDowngrade: against a server that predates the handshake
// (answers Hello with CodeBadRequest), Dial downgrades to protocol 1
// and v2-only client features fail typed with ErrVersion.
func TestHelloDowngrade(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			f, err := wire.ReadFrame(conn, 0)
			if err != nil {
				return
			}
			switch f.Op {
			case wire.OpPing:
				wire.WriteFrame(conn, wire.Frame{ID: f.ID, Op: wire.StatusOK})
			default: // an old server: unknown opcode
				var p wire.PayloadBuilder
				p.String("unknown opcode")
				wire.WriteFrame(conn, wire.Frame{ID: f.ID, Op: wire.CodeBadRequest, Payload: p.Bytes()})
			}
		}
	}()
	c, err := client.Dial(bg, l.Addr().String())
	if err != nil {
		t.Fatalf("dial against v1 server: %v", err)
	}
	defer c.Close()
	if got := c.Proto(); got != wire.V1 {
		t.Fatalf("negotiated protocol = %d, want 1", got)
	}
	if err := c.Ping(bg); err != nil {
		t.Fatalf("ping on downgraded session: %v", err)
	}
	if _, err := c.DocStatus(bg, "lib"); !errors.Is(err, client.ErrVersion) {
		t.Fatalf("DocStatus on protocol 1 = %v, want ErrVersion", err)
	}
	if _, err := c.QueryAt(bg, "lib", "//x", nil, 7); !errors.Is(err, client.ErrVersion) {
		t.Fatalf("QueryAt on protocol 1 = %v, want ErrVersion", err)
	}
}

// TestReadOnlyServer: a follower-mode server rejects writes typed and
// keeps serving reads.
func TestReadOnlyServer(t *testing.T) {
	dir := t.TempDir()
	db, err := mxq.Open(mxq.Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadXMLString("lib", libDoc); err != nil {
		t.Fatal(err)
	}
	addr, _ := startServer(t, server.Config{DB: db, ReadOnly: true})
	c := dial(t, addr)
	if _, err := c.Update(bg, "lib", wrapMods(`<xupdate:append select="/lib/shelf"><book>X</book></xupdate:append>`)); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("update on read-only server = %v, want ErrReadOnly", err)
	}
	if err := c.Load(bg, "other", libDoc); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("load on read-only server = %v, want ErrReadOnly", err)
	}
	items, err := c.Query(bg, "lib", "count(//book)", nil)
	if err != nil || items[0].Value != "2" {
		t.Fatalf("read on read-only server = %+v, %v", items, err)
	}
	st, err := c.DocStatus(bg, "lib")
	if err != nil || st.Role != "follower" {
		t.Fatalf("docstatus = %+v, %v; want follower role", st, err)
	}
}

// TestReadYourWritesAcrossReplica is the whole scale-out contract
// through the real daemon stack: a primary server, a follower server
// subscribed to it, and a client routing queries to the follower. The
// client's own writes are always visible to its reads (the follower
// parks them until caught up), and a read pinned above what the
// follower can reach fails typed instead of returning old data.
func TestReadYourWritesAcrossReplica(t *testing.T) {
	pdb, err := mxq.Open(mxq.Options{Dir: t.TempDir(), NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	primaryAddr, _ := startServer(t, server.Config{DB: pdb})
	seed := dial(t, primaryAddr)
	if err := seed.Load(bg, "lib", libDoc); err != nil {
		t.Fatal(err)
	}
	replicaAddr, fdb := startFollower(t, primaryAddr, "lib")

	c, err := client.Dial(bg, primaryAddr, client.WithReadReplica(replicaAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Each write then read must observe itself, no matter how far the
	// follower was behind when the read arrived.
	for i := 0; i < 5; i++ {
		res, err := c.Update(bg, "lib", wrapMods(`<xupdate:append select="/lib/shelf"><book>R</book></xupdate:append>`))
		if err != nil {
			t.Fatal(err)
		}
		if res.LSN == 0 {
			t.Fatal("v2 update response carried no commit LSN")
		}
		if c.LastLSN() != res.LSN {
			t.Fatalf("client LSN floor = %d, want %d", c.LastLSN(), res.LSN)
		}
		items, err := c.Query(bg, "lib", `count(//book[. = "R"])`, nil)
		if err != nil {
			t.Fatalf("replica-routed read after write %d: %v", i, err)
		}
		if want := strconv.Itoa(i + 1); items[0].Value != want {
			t.Fatalf("read-your-writes: count = %s after %s writes", items[0].Value, want)
		}
	}
	st, err := c.ReplicaStatus(bg, "lib")
	if err != nil || st.Role != "follower" {
		t.Fatalf("replica status = %+v, %v", st, err)
	}

	// A floor beyond anything committed: the follower parks, times out,
	// and answers typed — never a silently stale result.
	rc := dial(t, replicaAddr)
	fast, err := client.Dial(bg, replicaAddr, client.WithRYWTimeout(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	if _, err := fast.QueryAt(bg, "lib", "count(//book)", nil, c.LastLSN()+1000); !errors.Is(err, client.ErrStale) {
		t.Fatalf("over-pinned read = %v, want ErrStale", err)
	}
	// The same floor becomes servable once the primary commits past it
	// and the follower applies it — parking, not polling.
	target := c.LastLSN() + 1
	done := make(chan error, 1)
	go func() {
		_, err := rc.QueryAt(bg, "lib", "count(//book)", nil, target)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the read park on the follower
	if _, err := c.Update(bg, "lib", wrapMods(`<xupdate:update select="/lib/shelf/book[1]">seen</xupdate:update>`)); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("parked read after catch-up: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parked read never woke")
	}
	_ = fdb
}

// TestClientContextCancel: a context failure mid-round-trip leaves the
// client in the defined closed state — the call reports the context
// error, and every later call fails with ErrClosed.
func TestClientContextCancel(t *testing.T) {
	// A server that answers Hello and then goes silent: the next
	// round trip can only end by context.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				f, err := wire.ReadFrame(conn, 0)
				if err != nil || f.Op != wire.OpHello {
					return
				}
				var p wire.PayloadBuilder
				p.Uvarint(wire.V2).Uvarint(0)
				wire.WriteFrame(conn, wire.Frame{ID: f.ID, Op: wire.StatusOK, Payload: p.Bytes()})
				// Swallow everything after; never respond.
				for {
					if _, err := wire.ReadFrame(conn, 0); err != nil {
						return
					}
				}
			}()
		}
	}()
	c, err := client.Dial(bg, l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Deadline mid-round-trip.
	ctx, cancel := context.WithTimeout(bg, 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = c.Ping(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ping on silent server = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline did not interrupt the blocked read")
	}
	var ce *client.Error
	if !errors.As(err, &ce) || ce.Op != "ping" {
		t.Fatalf("error not a typed *client.Error with op: %#v", err)
	}

	// Defined closed state: the connection is desynchronized, so the
	// client is poisoned.
	if err := c.Ping(bg); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("ping after poisoning = %v, want ErrClosed", err)
	}

	// Cancellation (not deadline) behaves identically.
	c2, err := client.Dial(bg, l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ctx2, cancel2 := context.WithCancel(bg)
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel2()
	}()
	if err := c2.Ping(ctx2); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ping = %v, want Canceled", err)
	}
	if err := c2.Ping(bg); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("ping after cancel = %v, want ErrClosed", err)
	}
}
