package server_test

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"mxq"
	"mxq/client"
	"mxq/internal/server"
)

var bg = context.Background()

const libDoc = `<lib><shelf id="s1"><book year="1999">Alpha</book><book year="2003">Beta</book></shelf></lib>`

const modsWrap = `<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">%BODY%</xupdate:modifications>`

func wrapMods(body string) string { return strings.Replace(modsWrap, "%BODY%", body, 1) }

// startServer brings up a server on a loopback port and tears it down
// with the test.
func startServer(t *testing.T, cfg server.Config) (addr string, db *mxq.Database) {
	t.Helper()
	if cfg.DB == nil {
		var err error
		cfg.DB, err = mxq.Open(mxq.Options{})
		if err != nil {
			t.Fatal(err)
		}
	}
	db = cfg.DB
	srv := server.New(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() {
		srv.Shutdown(5 * time.Second)
		db.Close()
	})
	return l.Addr().String(), db
}

func dial(t *testing.T, addr string) *client.Client {
	t.Helper()
	c, err := client.Dial(bg, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientBasic(t *testing.T) {
	addr, _ := startServer(t, server.Config{})
	c := dial(t, addr)
	if err := c.Ping(bg); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if err := c.Load(bg, "lib", libDoc); err != nil {
		t.Fatalf("load: %v", err)
	}
	docs, err := c.ListDocs(bg)
	if err != nil || len(docs) != 1 || docs[0] != "lib" {
		t.Fatalf("docs = %v, %v", docs, err)
	}
	items, err := c.Query(bg, "lib", "//book", nil)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(items) != 2 || items[0].Kind != "element" || items[0].Value != "Alpha" {
		t.Fatalf("items = %+v", items)
	}
	if !strings.Contains(items[1].XML, `<book year="2003">Beta</book>`) {
		t.Fatalf("item xml = %q", items[1].XML)
	}
	items, err = c.Query(bg, "lib", "count(//book)", nil)
	if err != nil || len(items) != 1 || items[0].Kind != "number" || items[0].Value != "2" {
		t.Fatalf("count = %+v, %v", items, err)
	}
	items, err = c.Query(bg, "lib", "//book[. = $v]/@year", map[string]string{"v": "Beta"})
	if err != nil || len(items) != 1 || items[0].Kind != "attribute" || items[0].Value != "2003" {
		t.Fatalf("var query = %+v, %v", items, err)
	}
}

func TestClientErrors(t *testing.T) {
	addr, _ := startServer(t, server.Config{})
	c := dial(t, addr)
	if _, err := c.Query(bg, "nope", "//x", nil); !errors.Is(err, client.ErrNoDocument) {
		t.Fatalf("unknown doc = %v, want ErrNoDocument", err)
	}
	if err := c.Load(bg, "lib", libDoc); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(bg, "lib", "//book[", nil); err == nil {
		t.Fatal("bad query should error")
	}
	if err := c.EndRead(bg, "lib"); err == nil {
		t.Fatal("EndRead without BeginRead should error")
	}
	// The session must survive every error above.
	if err := c.Ping(bg); err != nil {
		t.Fatalf("ping after errors: %v", err)
	}
}

func TestClientUpdate(t *testing.T) {
	addr, _ := startServer(t, server.Config{})
	c := dial(t, addr)
	if err := c.Load(bg, "lib", libDoc); err != nil {
		t.Fatal(err)
	}
	res, err := c.Update(bg, "lib", wrapMods(`<xupdate:append select="/lib/shelf"><book year="2020">Gamma</book></xupdate:append>`))
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if res.Ops != 1 || res.Affected < 1 {
		t.Fatalf("update result = %+v", res)
	}
	items, err := c.Query(bg, "lib", "count(//book)", nil)
	if err != nil || items[0].Value != "3" {
		t.Fatalf("count after update = %+v, %v", items, err)
	}
}

func TestClientExplain(t *testing.T) {
	addr, _ := startServer(t, server.Config{})
	c := dial(t, addr)
	if err := c.Load(bg, "lib", libDoc); err != nil {
		t.Fatal(err)
	}
	plan, err := c.Explain(bg, "lib", "//shelf[book]")
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if !strings.Contains(plan, "seq (fused //)") || !strings.Contains(plan, "seq filter") {
		t.Fatalf("plan = %q, want fused sequence scan with in-place filter", plan)
	}
	if strings.Contains(plan, "per-node") {
		t.Fatalf("plan = %q, want no per-node fallback", plan)
	}
}

// TestClientSnapshotIsolation pins a read version and checks queries in
// the window ignore a commit that lands mid-window.
func TestClientSnapshotIsolation(t *testing.T) {
	addr, _ := startServer(t, server.Config{})
	reader := dial(t, addr)
	writer := dial(t, addr)
	if err := reader.Load(bg, "lib", libDoc); err != nil {
		t.Fatal(err)
	}
	v1, err := reader.BeginRead(bg, "lib")
	if err != nil {
		t.Fatalf("begin read: %v", err)
	}
	if _, err := writer.Update(bg, "lib", wrapMods(`<xupdate:append select="/lib/shelf"><book>New</book></xupdate:append>`)); err != nil {
		t.Fatal(err)
	}
	items, err := reader.Query(bg, "lib", "count(//book)", nil)
	if err != nil || items[0].Value != "2" {
		t.Fatalf("pinned count = %+v, %v (version %d)", items, err, v1)
	}
	items, err = writer.Query(bg, "lib", "count(//book)", nil)
	if err != nil || items[0].Value != "3" {
		t.Fatalf("unpinned count = %+v, %v", items, err)
	}
	if err := reader.EndRead(bg, "lib"); err != nil {
		t.Fatal(err)
	}
	items, err = reader.Query(bg, "lib", "count(//book)", nil)
	if err != nil || items[0].Value != "3" {
		t.Fatalf("count after EndRead = %+v, %v", items, err)
	}
	if _, err := reader.BeginRead(bg, "lib"); err != nil {
		t.Fatalf("re-pin: %v", err)
	}
	if _, err := reader.BeginRead(bg, "lib"); err == nil {
		t.Fatal("double BeginRead should error")
	}
}

// TestIdleClose checks the catalog detaches an unreferenced durable
// document and recovers it transparently on the next request.
func TestIdleClose(t *testing.T) {
	dir := t.TempDir()
	db, err := mxq.Open(mxq.Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := startServer(t, server.Config{DB: db, IdleClose: 30 * time.Millisecond})
	c := dial(t, addr)
	if err := c.Load(bg, "lib", libDoc); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(bg, "lib", "count(//book)", nil); err != nil {
		t.Fatal(err)
	}
	// The idle timer detaches the document from the database.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, open := db.Document("lib"); !open {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("document not detached after idle close")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The next request recovers it from its checkpoint.
	items, err := c.Query(bg, "lib", "count(//book)", nil)
	if err != nil || items[0].Value != "2" {
		t.Fatalf("query after idle close = %+v, %v", items, err)
	}
}

// TestIdleCloseDoesNotDetachPinnedRead: a pinned read holds a catalog
// reference, so the idle closer must leave the document attached.
func TestIdleCloseDoesNotDetachPinnedRead(t *testing.T) {
	dir := t.TempDir()
	db, err := mxq.Open(mxq.Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := startServer(t, server.Config{DB: db, IdleClose: 20 * time.Millisecond})
	c := dial(t, addr)
	if err := c.Load(bg, "lib", libDoc); err != nil {
		t.Fatal(err)
	}
	if _, err := c.BeginRead(bg, "lib"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if _, open := db.Document("lib"); !open {
		t.Fatal("pinned document was detached by the idle closer")
	}
	items, err := c.Query(bg, "lib", "count(//book)", nil)
	if err != nil || items[0].Value != "2" {
		t.Fatalf("pinned query = %+v, %v", items, err)
	}
}

func TestShutdownDrains(t *testing.T) {
	db, err := mxq.Open(mxq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{DB: db})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	c, err := client.Dial(bg, l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Load(bg, "lib", libDoc); err != nil {
		t.Fatal(err)
	}
	if _, err := c.BeginRead(bg, "lib"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The listener is closed; new connections fail.
	if _, err := net.DialTimeout("tcp", l.Addr().String(), 200*time.Millisecond); err == nil {
		t.Fatal("dial after shutdown should fail")
	}
	// The drained session released its pinned snapshot, so the database
	// closes cleanly.
	if err := c.Ping(bg); err == nil {
		t.Fatal("request on drained session should fail")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("db close after drain: %v", err)
	}
}

// TestManySessions exercises the server with a burst of concurrent
// sessions mixing queries and updates; every request must succeed (the
// default admission queue absorbs the burst — no overload responses).
func TestManySessions(t *testing.T) {
	addr, _ := startServer(t, server.Config{})
	setup := dial(t, addr)
	if err := setup.Load(bg, "lib", libDoc); err != nil {
		t.Fatal(err)
	}
	const sessions = 32
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(bg, addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 10; j++ {
				if i%4 == 0 && j == 5 {
					if _, err := c.Update(bg, "lib", wrapMods(`<xupdate:append select="/lib/shelf"><book>B</book></xupdate:append>`)); err != nil {
						errs <- err
						return
					}
					continue
				}
				if _, err := c.Query(bg, "lib", "//book[. = $v]", map[string]string{"v": "Alpha"}); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
