// Package server is the mxqd network daemon: a TCP server exposing a
// Database over a length-prefixed binary frame protocol, with
// per-session state (prepared-statement cache, pinned read versions), a
// refcounted lazily-opened document catalog, admission control (a
// weighted semaphore over executing requests with a bounded wait queue —
// overflow is answered with a fast ErrOverloaded frame instead of
// unbounded memory), and graceful drain (stop accepting, finish
// in-flight requests under a deadline, close documents so the
// auto-checkpointer and WAL flush cleanly).
//
// # Wire protocol
//
// Every frame — request and response — is
//
//	uint32  length of everything after this field (big-endian)
//	uint64  request id (echoed verbatim in the response)
//	byte    request: opcode; response: status (0 = OK, else error code)
//	...     payload
//
// Strings inside payloads are uvarint-length-prefixed bytes. A request
// payload starts with the document name (empty for document-independent
// ops), followed by per-opcode fields. Sessions are strictly
// sequential: a client sends one request per connection at a time and
// reads one response; concurrency comes from opening many connections,
// which is what the versioned read path was built for.
//
// # Session lifetime
//
// A connection is a session. Its prepared-statement cache keys compiled
// plans by (document instance, query text), so repeated queries skip the
// parse; its pinned reads (OpBeginRead … OpEndRead) hold a closeable
// snapshot per document, giving multi-request reads one consistent
// version. Everything a session holds — snapshots, catalog references —
// is released when the connection closes, however it closes.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Request opcodes.
const (
	OpPing      byte = 1 // -> OK, empty
	OpListDocs  byte = 2 // -> uvarint n, then n names
	OpLoad      byte = 3 // name, xml -> OK
	OpQuery     byte = 4 // name, query, uvarint nvars, (k, v)* -> result items
	OpUpdate    byte = 5 // name, xupdate xml -> uvarint applied count
	OpExplain   byte = 6 // name, query -> plan text
	OpBeginRead byte = 7 // name -> uvarint pinned version
	OpEndRead   byte = 8 // name -> OK
)

// Response status codes (0 is OK).
const (
	StatusOK          byte = 0
	CodeBadRequest    byte = 1 // malformed frame or unknown opcode
	CodeNoDocument    byte = 2 // unknown document name
	CodeQuery         byte = 3 // compile/evaluation/update error (message in payload)
	CodeOverloaded    byte = 4 // admission control rejected the request
	CodeShuttingDown  byte = 5 // server is draining
	CodeInternal      byte = 6
	CodeReadNotPinned byte = 7 // OpEndRead without a matching OpBeginRead
)

// Sentinel errors for the status codes a client program branches on.
var (
	ErrOverloaded   = errors.New("server: overloaded")
	ErrShuttingDown = errors.New("server: shutting down")
	ErrNoDocument   = errors.New("server: no such document")
)

// MaxFrame is the default cap on a frame's length field; a peer
// announcing more is cut off rather than allocated for.
const MaxFrame = 64 << 20

// Frame is one decoded frame: id, op (opcode or status), payload.
type Frame struct {
	ID      uint64
	Op      byte
	Payload []byte
}

// ReadFrame reads one frame, rejecting lengths beyond max (0 means
// MaxFrame).
func ReadFrame(r io.Reader, max uint32) (Frame, error) {
	if max == 0 {
		max = MaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 9 {
		return Frame{}, fmt.Errorf("server: frame too short (%d)", n)
	}
	if n > max {
		return Frame{}, fmt.Errorf("server: frame of %d bytes exceeds limit %d", n, max)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, err
	}
	return Frame{
		ID:      binary.BigEndian.Uint64(body[:8]),
		Op:      body[8],
		Payload: body[9:],
	}, nil
}

// WriteFrame writes one frame. The payload is assembled by the caller
// (see PayloadBuilder); a single Write keeps frames intact under
// concurrent connection teardown.
func WriteFrame(w io.Writer, f Frame) error {
	buf := make([]byte, 4+8+1+len(f.Payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(8+1+len(f.Payload)))
	binary.BigEndian.PutUint64(buf[4:12], f.ID)
	buf[12] = f.Op
	copy(buf[13:], f.Payload)
	_, err := w.Write(buf)
	return err
}

// PayloadBuilder assembles a payload of uvarints and length-prefixed
// strings.
type PayloadBuilder struct{ b []byte }

// Uvarint appends a uvarint.
func (p *PayloadBuilder) Uvarint(v uint64) *PayloadBuilder {
	p.b = binary.AppendUvarint(p.b, v)
	return p
}

// String appends a length-prefixed string.
func (p *PayloadBuilder) String(s string) *PayloadBuilder {
	p.b = binary.AppendUvarint(p.b, uint64(len(s)))
	p.b = append(p.b, s...)
	return p
}

// Byte appends one raw byte.
func (p *PayloadBuilder) Byte(c byte) *PayloadBuilder {
	p.b = append(p.b, c)
	return p
}

// Bytes returns the assembled payload.
func (p *PayloadBuilder) Bytes() []byte { return p.b }

// PayloadReader decodes a payload assembled by PayloadBuilder.
type PayloadReader struct{ b []byte }

// NewPayloadReader wraps a payload.
func NewPayloadReader(b []byte) *PayloadReader { return &PayloadReader{b: b} }

// Uvarint reads a uvarint.
func (p *PayloadReader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.b)
	if n <= 0 {
		return 0, errors.New("server: truncated uvarint")
	}
	p.b = p.b[n:]
	return v, nil
}

// String reads a length-prefixed string.
func (p *PayloadReader) String() (string, error) {
	n, err := p.Uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(p.b)) {
		return "", errors.New("server: truncated string")
	}
	s := string(p.b[:n])
	p.b = p.b[n:]
	return s, nil
}

// Byte reads one raw byte.
func (p *PayloadReader) Byte() (byte, error) {
	if len(p.b) == 0 {
		return 0, errors.New("server: truncated byte")
	}
	c := p.b[0]
	p.b = p.b[1:]
	return c, nil
}

// Remaining reports the unread byte count.
func (p *PayloadReader) Remaining() int { return len(p.b) }
