// Package server is the mxqd network daemon: a TCP server exposing a
// Database over a length-prefixed binary frame protocol, with
// per-session state (prepared-statement cache, pinned read versions,
// negotiated protocol version), a refcounted lazily-opened document
// catalog, admission control (a weighted semaphore over executing
// requests with a bounded wait queue — overflow is answered with a fast
// ErrOverloaded frame instead of unbounded memory), and graceful drain
// (stop accepting, finish in-flight requests under a deadline, close
// documents so the auto-checkpointer and WAL flush cleanly).
//
// The frame codec, opcode space and version-negotiation contract live
// in the leaf package internal/wire (shared with the replication
// subsystem and the Go client); this package re-exports the wire names
// under their historical identifiers so existing imports keep working.
//
// # Wire protocol
//
// Every frame — request and response — is
//
//	uint32  length of everything after this field (big-endian)
//	uint64  request id (echoed verbatim in the response)
//	byte    request: opcode; response: status (0 = OK, else error code)
//	...     payload
//
// Strings inside payloads are uvarint-length-prefixed bytes. A request
// payload starts with the document name (empty for document-independent
// ops), followed by per-opcode fields. Sessions are strictly
// sequential: a client sends one request per connection at a time and
// reads one response; concurrency comes from opening many connections,
// which is what the versioned read path was built for. The one
// exception is a session that issues OpSubscribeWAL: the connection
// leaves request/response mode for good and becomes a replication
// stream (snapshot and record frames outbound, acks inbound).
//
// # Versions
//
// A session starts at protocol 1; OpHello upgrades it (see the wire
// package for the negotiation rules). Version-gated opcodes on a
// protocol-1 session are answered with CodeVersion, not CodeBadRequest,
// so a client can tell "old server" from "forgot the handshake".
//
// # Session lifetime
//
// A connection is a session. Its prepared-statement cache keys compiled
// plans by (document instance, query text), so repeated queries skip the
// parse; its pinned reads (OpBeginRead … OpEndRead) hold a closeable
// snapshot per document, giving multi-request reads one consistent
// version. Everything a session holds — snapshots, catalog references —
// is released when the connection closes, however it closes.
package server

import (
	"errors"
	"io"

	"mxq/internal/wire"
)

// Request opcodes (see the wire package for payload layouts).
const (
	OpPing      = wire.OpPing
	OpListDocs  = wire.OpListDocs
	OpLoad      = wire.OpLoad
	OpQuery     = wire.OpQuery
	OpUpdate    = wire.OpUpdate
	OpExplain   = wire.OpExplain
	OpBeginRead = wire.OpBeginRead
	OpEndRead   = wire.OpEndRead

	OpHello        = wire.OpHello
	OpSubscribeWAL = wire.OpSubscribeWAL
	OpWALRecords   = wire.OpWALRecords
	OpSnapshot     = wire.OpSnapshot
	OpFollowerAck  = wire.OpFollowerAck
	OpDocStatus    = wire.OpDocStatus
)

// Response status codes (0 is OK).
const (
	StatusOK          = wire.StatusOK
	CodeBadRequest    = wire.CodeBadRequest
	CodeNoDocument    = wire.CodeNoDocument
	CodeQuery         = wire.CodeQuery
	CodeOverloaded    = wire.CodeOverloaded
	CodeShuttingDown  = wire.CodeShuttingDown
	CodeInternal      = wire.CodeInternal
	CodeReadNotPinned = wire.CodeReadNotPinned
	CodeStale         = wire.CodeStale
	CodeVersion       = wire.CodeVersion
	CodeReadOnly      = wire.CodeReadOnly
)

// Sentinel errors for the status codes a client program branches on.
var (
	ErrOverloaded   = errors.New("server: overloaded")
	ErrShuttingDown = errors.New("server: shutting down")
	ErrNoDocument   = errors.New("server: no such document")
)

// MaxFrame is the default cap on a frame's length field; a peer
// announcing more is cut off rather than allocated for.
const MaxFrame = wire.MaxFrame

// Frame is one decoded frame: id, op (opcode or status), payload.
type Frame = wire.Frame

// PayloadBuilder assembles a payload of uvarints and length-prefixed
// strings.
type PayloadBuilder = wire.PayloadBuilder

// PayloadReader decodes a payload assembled by PayloadBuilder.
type PayloadReader = wire.PayloadReader

// NewPayloadReader wraps a payload.
func NewPayloadReader(b []byte) *PayloadReader { return wire.NewPayloadReader(b) }

// ReadFrame reads one frame, rejecting lengths beyond max (0 means
// MaxFrame).
func ReadFrame(r io.Reader, max uint32) (Frame, error) { return wire.ReadFrame(r, max) }

// WriteFrame writes one frame in a single Write, keeping frames intact
// under concurrent connection teardown.
func WriteFrame(w io.Writer, f Frame) error { return wire.WriteFrame(w, f) }

// Result item kind codes on the wire.
const (
	KindElement = wire.KindElement
	KindText    = wire.KindText
	KindComment = wire.KindComment
	KindPI      = wire.KindPI
	KindAttr    = wire.KindAttr
	KindDoc     = wire.KindDoc
	KindNumber  = wire.KindNumber
	KindString  = wire.KindString
	KindBoolean = wire.KindBoolean
)

// KindName maps a wire kind code back to mxq's item kind string.
func KindName(c byte) string { return wire.KindName(c) }
