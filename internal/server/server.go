package server

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mxq"
	"mxq/internal/wire"
)

// Config configures a Server.
type Config struct {
	// DB is the database the server fronts. The server never closes it;
	// the daemon does, after Shutdown returns (so the WAL and
	// auto-checkpointers flush once no request can touch them).
	DB *mxq.Database
	// MaxConcurrent bounds the weight units executing at once (queries
	// weigh 1, updates and loads 2). Default 64.
	MaxConcurrent int64
	// MaxWaiters bounds how many admissions may queue before overflow is
	// answered with ErrOverloaded frames. Default 4 * MaxConcurrent.
	MaxWaiters int
	// IdleClose detaches a document (final checkpoint, WAL released)
	// after it has been unreferenced this long. Zero disables idle close;
	// it must be zero for databases without a durability directory
	// (detaching an in-memory document discards it).
	IdleClose time.Duration
	// MaxFrame caps a request frame's size (0 = MaxFrame const).
	MaxFrame uint32
	// ReadOnly rejects every write opcode (Load, Update) with
	// CodeReadOnly. The daemon's follower mode (-follow) sets it: a
	// followed document has exactly one writer, the primary's stream,
	// and a local write would fork its LSN line.
	ReadOnly bool
	// Logf, when non-nil, receives server lifecycle messages.
	Logf func(format string, args ...any)
}

// features reports the feature bits this server offers in Hello.
// Replication is always offered (any durable document can be
// subscribed); read-your-writes likewise (the applied watermark exists
// on primaries and followers alike); chunked bootstrap rides on the
// same checkpoint pin replication already holds.
func (s *Server) features() uint64 {
	return wire.FeatReplication | wire.FeatRYW | wire.FeatChunkedSnap
}

// Server is the mxqd daemon core: an accept loop spawning one session
// per connection over a shared catalog and admission semaphore.
type Server struct {
	cfg     Config
	adm     *admission
	catalog *catalog

	mu       sync.Mutex
	listener net.Listener
	sessions map[*session]struct{}
	wg       sync.WaitGroup
	drain    atomic.Bool
}

// New builds a server around cfg.DB.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 64
	}
	if cfg.MaxWaiters <= 0 {
		cfg.MaxWaiters = int(4 * cfg.MaxConcurrent)
	}
	return &Server{
		cfg:      cfg,
		adm:      newAdmission(cfg.MaxConcurrent, cfg.MaxWaiters),
		catalog:  newCatalog(cfg.DB, cfg.IdleClose),
		sessions: make(map[*session]struct{}),
	}
}

// Serve accepts connections on l until Shutdown (or a fatal listener
// error). It blocks; run it in a goroutine and call Shutdown to stop.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.drain.Load() {
				return nil
			}
			return err
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		sess := newSession(s, conn)
		s.mu.Lock()
		if s.drain.Load() {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.sessions[sess] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go sess.serve()
	}
}

func (s *Server) draining() bool { return s.drain.Load() }

// sessionDone unregisters a finished session.
func (s *Server) sessionDone(sess *session) {
	s.mu.Lock()
	if _, ok := s.sessions[sess]; ok {
		delete(s.sessions, sess)
		s.wg.Done()
	}
	s.mu.Unlock()
}

// Shutdown drains the server: stop accepting, fail queued admissions,
// let requests already executing finish and their responses flush, and
// force-close whatever is still running when the timeout expires.
// Sessions release their pinned snapshots and catalog references on the
// way out; after Shutdown returns, no request touches the database, so
// the daemon can Close it (flushing WAL segments and draining
// auto-checkpointers) safely.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.drain.Store(true)
	s.mu.Lock()
	l := s.listener
	conns := make([]net.Conn, 0, len(s.sessions))
	for sess := range s.sessions {
		conns = append(conns, sess.conn)
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	// Queued admissions fail now (their sessions answer ShuttingDown);
	// executing holders release normally.
	s.adm.close()
	// Unblock sessions parked in ReadFrame; one mid-request finishes and
	// responds first, then its next read fails and the session exits.
	now := time.Now()
	for _, c := range conns {
		c.SetReadDeadline(now)
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	var timedOut bool
	select {
	case <-done:
	case <-time.After(timeout):
		timedOut = true
		s.mu.Lock()
		for sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.catalog.shutdown()
	if s.cfg.Logf != nil {
		s.cfg.Logf("server: drained (forced=%v)", timedOut)
	}
	if timedOut {
		return errors.New("server: drain deadline exceeded; connections force-closed")
	}
	return nil
}
