package server

import (
	"sync"
	"time"

	"mxq"
)

// catalog is the server's refcounted document registry. Documents open
// once per name on first use (mxq.Database.OpenDocument recovers them
// lazily from their durability artifacts) and close on idle: when the
// last reference is released, a timer starts, and if no one re-acquires
// the document before it fires, the catalog detaches it (final
// checkpoint, WAL released) so an mxqd fronting thousands of documents
// holds memory only for the working set. Idle close is enabled only
// when the database is durable — detaching an in-memory document would
// discard it.
type catalog struct {
	db        *mxq.Database
	idleClose time.Duration // 0 = never close idle documents

	mu      sync.Mutex
	entries map[string]*catEntry
	// closing marks names whose detach (final checkpoint, WAL release)
	// is in flight. An acquire for such a name must wait for the channel
	// to close before reopening: going straight to OpenDocument would
	// either race the checkpoint write (spurious "no document") or grab
	// the dying instance out of the database map.
	closing map[string]chan struct{}
}

type catEntry struct {
	doc   *mxq.Document
	refs  int
	timer *time.Timer
	// wmu serializes the server's write transactions on this document:
	// the engine's page locking is optimistic (a racing writer gets
	// tx.ErrConflict back), so concurrent update frames queue here
	// instead of bouncing off each other. Readers never take it.
	wmu sync.Mutex
}

func newCatalog(db *mxq.Database, idleClose time.Duration) *catalog {
	return &catalog{
		db:        db,
		idleClose: idleClose,
		entries:   make(map[string]*catEntry),
		closing:   make(map[string]chan struct{}),
	}
}

// acquire returns the named document with a reference held; the caller
// must call release exactly once when done with it.
func (c *catalog) acquire(name string) (*mxq.Document, error) {
	e, err := c.acquireEntry(name)
	if err != nil {
		return nil, err
	}
	return e.doc, nil
}

// acquireEntry is acquire for callers that also need the entry's write
// mutex (updates). The reference pins the entry: it cannot be detached
// until release, so holding e.wmu past the catalog lock is safe.
func (c *catalog) acquireEntry(name string) (*catEntry, error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[name]; ok {
			// Re-validate against the database: a follower bootstrap
			// replaces the document instance wholesale (docSink.Bootstrap
			// detaches the old one and publishes a new one), which this
			// catalog cannot see. A cached entry pointing at a detached
			// instance would serve reads frozen at the old LSN line.
			if cur, live := c.db.Document(name); live && cur == e.doc {
				e.refs++
				if e.timer != nil {
					e.timer.Stop()
					e.timer = nil
				}
				c.mu.Unlock()
				return e, nil
			}
			// Stale: drop the entry and reopen below. References already
			// out on the old entry still release by name against the new
			// one; the refcount only times idle close, so the worst a
			// miscount causes is an early or late detach, which acquire
			// recovers from by reopening.
			delete(c.entries, name)
		}
		done, detaching := c.closing[name]
		c.mu.Unlock()
		if !detaching {
			break
		}
		<-done // wait out the in-flight detach, then retry
	}

	// Open outside the catalog lock: recovery is O(document) and must
	// not stall other names. A racing open of the same name resolves in
	// the re-check below (OpenDocument itself is idempotent).
	doc, err := c.db.OpenDocument(name)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[name]; ok {
		e.refs++
		if e.timer != nil {
			e.timer.Stop()
			e.timer = nil
		}
		return e, nil
	}
	e := &catEntry{doc: doc, refs: 1}
	c.entries[name] = e
	return e, nil
}

// adopt registers a document created through the protocol (OpLoad) with
// one reference held.
func (c *catalog) adopt(name string, doc *mxq.Document) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[name]; ok {
		e.refs++
		return
	}
	c.entries[name] = &catEntry{doc: doc, refs: 1}
}

// release drops one reference; the last one arms the idle-close timer.
func (c *catalog) release(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return
	}
	e.refs--
	if e.refs > 0 || c.idleClose <= 0 {
		return
	}
	e.timer = time.AfterFunc(c.idleClose, func() { c.closeIdle(name) })
}

// closeIdle detaches the document if it is still unreferenced when the
// timer fires.
func (c *catalog) closeIdle(name string) {
	c.mu.Lock()
	e, ok := c.entries[name]
	if !ok || e.refs > 0 {
		c.mu.Unlock()
		return
	}
	delete(c.entries, name)
	done := make(chan struct{})
	c.closing[name] = done
	c.mu.Unlock()
	// Outside the lock: the final checkpoint streams O(document).
	// Acquires for this name park on the closing channel meanwhile.
	_ = c.db.CloseDocument(name)
	c.mu.Lock()
	delete(c.closing, name)
	c.mu.Unlock()
	close(done)
}

// shutdown stops every idle timer; document close is left to
// Database.Close, which the daemon calls after the drain.
func (c *catalog) shutdown() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		if e.timer != nil {
			e.timer.Stop()
			e.timer = nil
		}
	}
}
