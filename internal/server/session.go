package server

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"mxq"
	"mxq/internal/repl"
	"mxq/internal/wire"
)

// maxPrepared bounds the per-session prepared-statement cache.
const maxPrepared = 256

// prepKey keys compiled plans by document *instance*, not name: a
// document detached by the idle closer and recovered again is a new
// instance, so stale plans (bound to the old instance's store) can
// never serve reads against the new one.
type prepKey struct {
	doc *mxq.Document
	q   string
}

// pinnedRead is one BEGIN READ … END window: a closeable snapshot plus
// the catalog reference that keeps its document attached.
type pinnedRead struct {
	doc  *mxq.Document
	snap *mxq.Snapshot
}

// session serves one connection. Requests are handled strictly in
// order; everything the session holds is released in closeSession.
type session struct {
	srv      *Server
	conn     net.Conn
	prepared map[prepKey]*mxq.Prepared
	reads    map[string]*pinnedRead // doc name -> pinned snapshot
	proto    uint64                 // negotiated protocol version; V1 until Hello
	feats    uint64                 // negotiated feature bits; 0 until Hello
}

func newSession(srv *Server, conn net.Conn) *session {
	return &session{
		srv:      srv,
		conn:     conn,
		prepared: make(map[prepKey]*mxq.Prepared),
		reads:    make(map[string]*pinnedRead),
		proto:    wire.V1,
	}
}

// serve is the session's request loop.
func (s *session) serve() {
	defer s.closeSession()
	for {
		f, err := ReadFrame(s.conn, s.srv.cfg.MaxFrame)
		if err != nil {
			return // disconnect, malformed frame, or drain deadline
		}
		if s.srv.draining() {
			s.respondErr(f.ID, CodeShuttingDown, "server is shutting down")
			return
		}
		if !s.handle(f) {
			return
		}
	}
}

// closeSession releases every held resource: pinned snapshots (and
// their catalog references), then the connection. The prepared cache
// needs no teardown (compiled plans hold no store references).
func (s *session) closeSession() {
	for name, pr := range s.reads {
		pr.snap.Close()
		s.srv.catalog.release(name)
		delete(s.reads, name)
	}
	s.conn.Close()
	s.srv.sessionDone(s)
}

// handle dispatches one request; it reports whether the session should
// keep serving.
func (s *session) handle(f Frame) bool {
	switch f.Op {
	case OpPing:
		return s.respond(f.ID, StatusOK, nil)
	case OpListDocs:
		names := s.srv.cfg.DB.Documents()
		var p PayloadBuilder
		p.Uvarint(uint64(len(names)))
		for _, n := range names {
			p.String(n)
		}
		return s.respond(f.ID, StatusOK, p.Bytes())
	case OpLoad:
		return s.handleLoad(f)
	case OpQuery:
		return s.handleQuery(f)
	case OpUpdate:
		return s.handleUpdate(f)
	case OpExplain:
		return s.handleExplain(f)
	case OpBeginRead:
		return s.handleBeginRead(f)
	case OpEndRead:
		return s.handleEndRead(f)
	case OpHello:
		return s.handleHello(f)
	case OpSubscribeWAL:
		return s.handleSubscribeWAL(f)
	case OpDocStatus:
		return s.handleDocStatus(f)
	}
	return s.respondErr(f.ID, CodeBadRequest, fmt.Sprintf("unknown opcode %d", f.Op))
}

// handleHello negotiates the session's protocol version and feature
// set. Hello may be sent at any point (idempotently renegotiating), but
// clients send it first.
func (s *session) handleHello(f Frame) bool {
	r := NewPayloadReader(f.Payload)
	clientMax, err := r.Uvarint()
	if err != nil {
		return s.respondErr(f.ID, CodeBadRequest, err.Error())
	}
	clientFeats, err := r.Uvarint()
	if err != nil {
		return s.respondErr(f.ID, CodeBadRequest, err.Error())
	}
	version, feats, ok := wire.Negotiate(clientMax, s.srv.features(), clientFeats)
	if !ok {
		return s.respondErr(f.ID, CodeVersion,
			fmt.Sprintf("client speaks up to protocol %d; this server speaks %d..%d",
				clientMax, wire.MinVersion, wire.MaxVersion))
	}
	s.proto = version
	s.feats = feats
	var p PayloadBuilder
	p.Uvarint(version).Uvarint(feats)
	return s.respond(f.ID, StatusOK, p.Bytes())
}

// requireV2 gates a version-2 opcode: on a session that has not
// negotiated V2 it answers CodeVersion (a typed rejection — never
// CodeBadRequest, so a client can tell "old server" from "forgot the
// handshake") and reports false.
func (s *session) requireV2(f Frame) bool {
	if s.proto >= wire.V2 {
		return true
	}
	s.respondErr(f.ID, CodeVersion, fmt.Sprintf("opcode %d requires protocol 2; session negotiated %d", f.Op, s.proto))
	return false
}

// handleSubscribeWAL turns the connection into a replication stream:
// the mode response, then snapshot and record frames outbound with acks
// inbound, until the follower disconnects. The connection never returns
// to request/response mode — the session ends when the stream does.
//
// The subscription deliberately bypasses the admission semaphore: it is
// a long-lived stream, not a request, and parking a semaphore unit for
// its whole lifetime would let a handful of followers starve query
// admission. The WAL reader it drives does bounded work per batch and
// blocks idle between commits.
func (s *session) handleSubscribeWAL(f Frame) bool {
	if !s.requireV2(f) {
		return true
	}
	if s.feats&wire.FeatReplication == 0 {
		s.respondErr(f.ID, CodeVersion, "session did not negotiate the replication feature")
		return true
	}
	r := NewPayloadReader(f.Payload)
	name, err := r.String()
	if err != nil {
		s.respondErr(f.ID, CodeBadRequest, err.Error())
		return true
	}
	after, err := r.Uvarint()
	if err != nil {
		s.respondErr(f.ID, CodeBadRequest, err.Error())
		return true
	}
	doc, err := s.srv.catalog.acquire(name)
	if err != nil {
		s.respondNoDoc(f.ID, name, err)
		return true
	}
	// The catalog reference is held for the stream's whole life: a
	// subscribed document must not be idle-closed out from under its
	// WAL reader.
	defer s.srv.catalog.release(name)
	src, err := doc.ReplSource()
	if err != nil {
		s.respondErr(f.ID, CodeQuery, err.Error())
		return true
	}
	// Chunked bootstrap only for sessions that negotiated it (v3 +
	// feature bit) — the additivity rule for new stream opcodes.
	src.Chunked = s.proto >= wire.V3 && s.feats&wire.FeatChunkedSnap != 0
	logf := s.srv.cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := repl.Serve(s.conn, f.ID, after, src, s.srv.cfg.MaxFrame, logf); err != nil {
		logf("server: replication stream for %q ended: %v", name, err)
	}
	return false
}

// handleDocStatus reports the document's replication standing: the
// server's role, the applied (read-your-writes) watermark and the WAL
// tail. A client uses it to measure follower lag and to pick replicas.
func (s *session) handleDocStatus(f Frame) bool {
	if !s.requireV2(f) {
		return true
	}
	r := NewPayloadReader(f.Payload)
	name, err := r.String()
	if err != nil {
		return s.respondErr(f.ID, CodeBadRequest, err.Error())
	}
	doc, err := s.srv.catalog.acquire(name)
	if err != nil {
		return s.respondNoDoc(f.ID, name, err)
	}
	defer s.srv.catalog.release(name)
	role := wire.RolePrimary
	if s.srv.cfg.ReadOnly {
		role = wire.RoleFollower
	}
	var p PayloadBuilder
	p.Byte(role).Uvarint(doc.AppliedLSN()).Uvarint(doc.LastLSN())
	if s.proto >= wire.V3 {
		// Appended fields (v3 growth rule): the document's cumulative
		// checkpoint I/O — how much the incremental format is saving.
		st := doc.Stats()
		p.Uvarint(st.CkptBytesWritten).Uvarint(st.CkptChunksWritten).Uvarint(st.CkptChunksReused)
	}
	return s.respond(f.ID, StatusOK, p.Bytes())
}

// admit wraps an execution in the admission semaphore, translating
// rejection into the fast error frames overload control promises.
func (s *session) admit(id uint64, weight int64, run func() bool) bool {
	if err := s.srv.adm.acquire(weight); err != nil {
		if errors.Is(err, ErrOverloaded) {
			return s.respondErr(id, CodeOverloaded, "overloaded")
		}
		return s.respondErr(id, CodeShuttingDown, "server is shutting down")
	}
	defer s.srv.adm.release(weight)
	return run()
}

func (s *session) handleLoad(f Frame) bool {
	r := NewPayloadReader(f.Payload)
	name, err := r.String()
	if err != nil {
		return s.respondErr(f.ID, CodeBadRequest, err.Error())
	}
	xml, err := r.String()
	if err != nil {
		return s.respondErr(f.ID, CodeBadRequest, err.Error())
	}
	if s.srv.cfg.ReadOnly {
		return s.respondErr(f.ID, CodeReadOnly, "server is read-only (follower); load on the primary")
	}
	return s.admit(f.ID, 2, func() bool {
		doc, err := s.srv.cfg.DB.LoadXMLString(name, xml)
		if err != nil {
			return s.respondErr(f.ID, CodeQuery, err.Error())
		}
		s.srv.catalog.adopt(name, doc)
		s.srv.catalog.release(name)
		return s.respond(f.ID, StatusOK, nil)
	})
}

func (s *session) handleQuery(f Frame) bool {
	r := NewPayloadReader(f.Payload)
	name, err := r.String()
	if err != nil {
		return s.respondErr(f.ID, CodeBadRequest, err.Error())
	}
	query, err := r.String()
	if err != nil {
		return s.respondErr(f.ID, CodeBadRequest, err.Error())
	}
	nvars, err := r.Uvarint()
	if err != nil || nvars > 1024 {
		return s.respondErr(f.ID, CodeBadRequest, "bad variable count")
	}
	var vars map[string]string
	if nvars > 0 {
		vars = make(map[string]string, nvars)
		for i := uint64(0); i < nvars; i++ {
			k, err := r.String()
			if err != nil {
				return s.respondErr(f.ID, CodeBadRequest, err.Error())
			}
			v, err := r.String()
			if err != nil {
				return s.respondErr(f.ID, CodeBadRequest, err.Error())
			}
			vars[k] = v
		}
	}
	// V2 read-your-writes trailer: a minimum LSN the document must have
	// applied before the query runs, and how long to park waiting for
	// it. Absent (a V1 client, or a V2 client that omitted it) means
	// "read whatever is current".
	var minLSN, timeoutMillis uint64
	if s.proto >= wire.V2 && r.Remaining() > 0 {
		if minLSN, err = r.Uvarint(); err != nil {
			return s.respondErr(f.ID, CodeBadRequest, err.Error())
		}
		if timeoutMillis, err = r.Uvarint(); err != nil {
			return s.respondErr(f.ID, CodeBadRequest, err.Error())
		}
	}
	return s.admit(f.ID, 1, func() bool {
		rywDeadline := time.Now().Add(time.Duration(timeoutMillis) * time.Millisecond)
		if minLSN > 0 {
			// A follower that is still bootstrapping the document has
			// nothing to acquire yet; the read-your-writes park covers
			// "document not here yet" the same as "LSN not applied yet".
			if ok, served := s.waitForDoc(f.ID, name, rywDeadline); !ok {
				return served
			}
		}
		doc, pr, release, ok := s.docForRead(f.ID, name)
		if !ok {
			return true
		}
		defer release()
		if minLSN > 0 {
			// Park until the replica catches up to the client's commit.
			// This holds an admission unit while parked — deliberate: a
			// flood of reads against a stalled follower should trip
			// overload control rather than pile up unboundedly behind it.
			if err := doc.WaitApplied(minLSN, time.Until(rywDeadline)); err != nil {
				if errors.Is(err, mxq.ErrStale) {
					return s.respondErr(f.ID, CodeStale,
						fmt.Sprintf("document %q applied LSN %d, read requires %d", name, doc.AppliedLSN(), minLSN))
				}
				return s.respondErr(f.ID, CodeInternal, err.Error())
			}
		}
		prep, err := s.prepare(doc, query)
		if err != nil {
			return s.respondErr(f.ID, CodeQuery, err.Error())
		}
		var res mxq.Result
		if pr != nil {
			res, err = prep.RunSnapshot(pr.snap, vars)
		} else {
			res, err = prep.Run(vars)
		}
		if err != nil {
			return s.respondErr(f.ID, CodeQuery, err.Error())
		}
		return s.respond(f.ID, StatusOK, encodeResult(res))
	})
}

func (s *session) handleUpdate(f Frame) bool {
	r := NewPayloadReader(f.Payload)
	name, err := r.String()
	if err != nil {
		return s.respondErr(f.ID, CodeBadRequest, err.Error())
	}
	mods, err := r.String()
	if err != nil {
		return s.respondErr(f.ID, CodeBadRequest, err.Error())
	}
	if s.srv.cfg.ReadOnly {
		return s.respondErr(f.ID, CodeReadOnly, "server is read-only (follower); write on the primary")
	}
	return s.admit(f.ID, 2, func() bool {
		e, err := s.srv.catalog.acquireEntry(name)
		if err != nil {
			return s.respondNoDoc(f.ID, name, err)
		}
		defer s.srv.catalog.release(name)
		// Serialize writers: the engine's optimistic page locks turn a
		// racing update into tx.ErrConflict; queueing on the entry's
		// write mutex gives the wire protocol first-come-first-served
		// updates instead of surfacing the conflict to clients.
		e.wmu.Lock()
		defer e.wmu.Unlock()
		res, lsn, err := e.doc.UpdateLSN(mods)
		if err != nil {
			return s.respondErr(f.ID, CodeQuery, err.Error())
		}
		var p PayloadBuilder
		p.Uvarint(uint64(res.Ops)).Uvarint(uint64(res.Affected))
		if s.proto >= wire.V2 {
			// Appended field (v2 growth rule): the commit's WAL LSN, the
			// token a read-your-writes follower read passes as minLSN.
			p.Uvarint(lsn)
		}
		return s.respond(f.ID, StatusOK, p.Bytes())
	})
}

func (s *session) handleExplain(f Frame) bool {
	r := NewPayloadReader(f.Payload)
	name, err := r.String()
	if err != nil {
		return s.respondErr(f.ID, CodeBadRequest, err.Error())
	}
	query, err := r.String()
	if err != nil {
		return s.respondErr(f.ID, CodeBadRequest, err.Error())
	}
	return s.admit(f.ID, 1, func() bool {
		doc, _, release, ok := s.docForRead(f.ID, name)
		if !ok {
			return true
		}
		defer release()
		prep, err := s.prepare(doc, query)
		if err != nil {
			return s.respondErr(f.ID, CodeQuery, err.Error())
		}
		var p PayloadBuilder
		p.String(prep.Explain())
		return s.respond(f.ID, StatusOK, p.Bytes())
	})
}

func (s *session) handleBeginRead(f Frame) bool {
	r := NewPayloadReader(f.Payload)
	name, err := r.String()
	if err != nil {
		return s.respondErr(f.ID, CodeBadRequest, err.Error())
	}
	if _, dup := s.reads[name]; dup {
		return s.respondErr(f.ID, CodeBadRequest, fmt.Sprintf("read already pinned on %q", name))
	}
	doc, err := s.srv.catalog.acquire(name)
	if err != nil {
		return s.respondNoDoc(f.ID, name, err)
	}
	snap := doc.Snapshot()
	s.reads[name] = &pinnedRead{doc: doc, snap: snap}
	var p PayloadBuilder
	p.Uvarint(snap.Version())
	return s.respond(f.ID, StatusOK, p.Bytes())
}

func (s *session) handleEndRead(f Frame) bool {
	r := NewPayloadReader(f.Payload)
	name, err := r.String()
	if err != nil {
		return s.respondErr(f.ID, CodeBadRequest, err.Error())
	}
	pr, ok := s.reads[name]
	if !ok {
		return s.respondErr(f.ID, CodeReadNotPinned, fmt.Sprintf("no pinned read on %q", name))
	}
	delete(s.reads, name)
	pr.snap.Close()
	s.srv.catalog.release(name)
	return s.respond(f.ID, StatusOK, nil)
}

// waitForDoc polls until the named document exists (a replica may
// still be bootstrapping it), the deadline passes (answer CodeStale —
// the same typed outcome as a read-your-writes timeout) or a
// non-retryable open error appears. ok=true means proceed; otherwise
// the response was sent and served is the keep-serving result.
func (s *session) waitForDoc(id uint64, name string, deadline time.Time) (ok, served bool) {
	for {
		if _, pinned := s.reads[name]; pinned {
			return true, true
		}
		_, err := s.srv.catalog.acquire(name)
		if err == nil {
			s.srv.catalog.release(name)
			return true, true
		}
		if errors.Is(err, mxq.ErrDatabaseClosed) || !strings.Contains(err.Error(), "no document") {
			return false, s.respondNoDoc(id, name, err)
		}
		if !time.Now().Before(deadline) {
			return false, s.respondErr(id, CodeStale, fmt.Sprintf("document %q not yet replicated here", name))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// docForRead resolves the document a read request runs against: the
// pinned read when the session holds one (no extra catalog traffic; the
// pin's reference keeps the document attached), otherwise a fresh
// catalog reference released after the request. ok=false means the
// error response was already sent.
func (s *session) docForRead(id uint64, name string) (doc *mxq.Document, pr *pinnedRead, release func(), ok bool) {
	if pr := s.reads[name]; pr != nil {
		return pr.doc, pr, func() {}, true
	}
	doc, err := s.srv.catalog.acquire(name)
	if err != nil {
		s.respondNoDoc(id, name, err)
		return nil, nil, nil, false
	}
	return doc, nil, func() { s.srv.catalog.release(name) }, true
}

// prepare returns the session's cached compiled plan for (doc, query),
// compiling and caching on miss.
func (s *session) prepare(doc *mxq.Document, query string) (*mxq.Prepared, error) {
	key := prepKey{doc: doc, q: query}
	if p, ok := s.prepared[key]; ok {
		return p, nil
	}
	p, err := doc.Prepare(query)
	if err != nil {
		return nil, err
	}
	if len(s.prepared) >= maxPrepared {
		// Full: drop an arbitrary half. Sessions with a stable statement
		// set never hit this; one cycling through thousands of distinct
		// texts gets cache misses, not unbounded memory.
		n := 0
		for k := range s.prepared {
			delete(s.prepared, k)
			if n++; n >= maxPrepared/2 {
				break
			}
		}
	}
	s.prepared[key] = p
	return p, nil
}

// encodeResult renders a Result: uvarint count, then per item a kind
// code, the string value, and the serialized XML ("" for non-elements).
func encodeResult(res mxq.Result) []byte {
	var p PayloadBuilder
	p.Uvarint(uint64(len(res)))
	for _, it := range res {
		p.Byte(wire.KindCode(it.Kind))
		p.String(it.Value)
		p.String(it.XML)
	}
	return p.Bytes()
}

func (s *session) respond(id uint64, status byte, payload []byte) bool {
	return WriteFrame(s.conn, Frame{ID: id, Op: status, Payload: payload}) == nil
}

func (s *session) respondErr(id uint64, code byte, msg string) bool {
	var p PayloadBuilder
	p.String(msg)
	return s.respond(id, code, p.Bytes())
}

// respondNoDoc distinguishes "unknown document" from other open errors.
func (s *session) respondNoDoc(id uint64, name string, err error) bool {
	if errors.Is(err, mxq.ErrDatabaseClosed) {
		return s.respondErr(id, CodeShuttingDown, "server is shutting down")
	}
	if strings.Contains(err.Error(), "no document") {
		return s.respondErr(id, CodeNoDocument, fmt.Sprintf("no document %q", name))
	}
	return s.respondErr(id, CodeInternal, err.Error())
}
