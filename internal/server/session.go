package server

import (
	"errors"
	"fmt"
	"net"
	"strings"

	"mxq"
)

// Result item kind codes on the wire.
const (
	KindElement byte = 1
	KindText    byte = 2
	KindComment byte = 3
	KindPI      byte = 4
	KindAttr    byte = 5
	KindDoc     byte = 6
	KindNumber  byte = 7
	KindString  byte = 8
	KindBoolean byte = 9
)

var kindCodes = map[string]byte{
	"element": KindElement, "text": KindText, "comment": KindComment,
	"processing-instruction": KindPI, "attribute": KindAttr,
	"document": KindDoc, "number": KindNumber, "string": KindString,
	"boolean": KindBoolean,
}

// KindName maps a wire kind code back to mxq's item kind string.
func KindName(c byte) string {
	for n, k := range kindCodes {
		if k == c {
			return n
		}
	}
	return fmt.Sprintf("kind(%d)", c)
}

// maxPrepared bounds the per-session prepared-statement cache.
const maxPrepared = 256

// prepKey keys compiled plans by document *instance*, not name: a
// document detached by the idle closer and recovered again is a new
// instance, so stale plans (bound to the old instance's store) can
// never serve reads against the new one.
type prepKey struct {
	doc *mxq.Document
	q   string
}

// pinnedRead is one BEGIN READ … END window: a closeable snapshot plus
// the catalog reference that keeps its document attached.
type pinnedRead struct {
	doc  *mxq.Document
	snap *mxq.Snapshot
}

// session serves one connection. Requests are handled strictly in
// order; everything the session holds is released in closeSession.
type session struct {
	srv      *Server
	conn     net.Conn
	prepared map[prepKey]*mxq.Prepared
	reads    map[string]*pinnedRead // doc name -> pinned snapshot
}

func newSession(srv *Server, conn net.Conn) *session {
	return &session{
		srv:      srv,
		conn:     conn,
		prepared: make(map[prepKey]*mxq.Prepared),
		reads:    make(map[string]*pinnedRead),
	}
}

// serve is the session's request loop.
func (s *session) serve() {
	defer s.closeSession()
	for {
		f, err := ReadFrame(s.conn, s.srv.cfg.MaxFrame)
		if err != nil {
			return // disconnect, malformed frame, or drain deadline
		}
		if s.srv.draining() {
			s.respondErr(f.ID, CodeShuttingDown, "server is shutting down")
			return
		}
		if !s.handle(f) {
			return
		}
	}
}

// closeSession releases every held resource: pinned snapshots (and
// their catalog references), then the connection. The prepared cache
// needs no teardown (compiled plans hold no store references).
func (s *session) closeSession() {
	for name, pr := range s.reads {
		pr.snap.Close()
		s.srv.catalog.release(name)
		delete(s.reads, name)
	}
	s.conn.Close()
	s.srv.sessionDone(s)
}

// handle dispatches one request; it reports whether the session should
// keep serving.
func (s *session) handle(f Frame) bool {
	switch f.Op {
	case OpPing:
		return s.respond(f.ID, StatusOK, nil)
	case OpListDocs:
		names := s.srv.cfg.DB.Documents()
		var p PayloadBuilder
		p.Uvarint(uint64(len(names)))
		for _, n := range names {
			p.String(n)
		}
		return s.respond(f.ID, StatusOK, p.Bytes())
	case OpLoad:
		return s.handleLoad(f)
	case OpQuery:
		return s.handleQuery(f)
	case OpUpdate:
		return s.handleUpdate(f)
	case OpExplain:
		return s.handleExplain(f)
	case OpBeginRead:
		return s.handleBeginRead(f)
	case OpEndRead:
		return s.handleEndRead(f)
	}
	return s.respondErr(f.ID, CodeBadRequest, fmt.Sprintf("unknown opcode %d", f.Op))
}

// admit wraps an execution in the admission semaphore, translating
// rejection into the fast error frames overload control promises.
func (s *session) admit(id uint64, weight int64, run func() bool) bool {
	if err := s.srv.adm.acquire(weight); err != nil {
		if errors.Is(err, ErrOverloaded) {
			return s.respondErr(id, CodeOverloaded, "overloaded")
		}
		return s.respondErr(id, CodeShuttingDown, "server is shutting down")
	}
	defer s.srv.adm.release(weight)
	return run()
}

func (s *session) handleLoad(f Frame) bool {
	r := NewPayloadReader(f.Payload)
	name, err := r.String()
	if err != nil {
		return s.respondErr(f.ID, CodeBadRequest, err.Error())
	}
	xml, err := r.String()
	if err != nil {
		return s.respondErr(f.ID, CodeBadRequest, err.Error())
	}
	return s.admit(f.ID, 2, func() bool {
		doc, err := s.srv.cfg.DB.LoadXMLString(name, xml)
		if err != nil {
			return s.respondErr(f.ID, CodeQuery, err.Error())
		}
		s.srv.catalog.adopt(name, doc)
		s.srv.catalog.release(name)
		return s.respond(f.ID, StatusOK, nil)
	})
}

func (s *session) handleQuery(f Frame) bool {
	r := NewPayloadReader(f.Payload)
	name, err := r.String()
	if err != nil {
		return s.respondErr(f.ID, CodeBadRequest, err.Error())
	}
	query, err := r.String()
	if err != nil {
		return s.respondErr(f.ID, CodeBadRequest, err.Error())
	}
	nvars, err := r.Uvarint()
	if err != nil || nvars > 1024 {
		return s.respondErr(f.ID, CodeBadRequest, "bad variable count")
	}
	var vars map[string]string
	if nvars > 0 {
		vars = make(map[string]string, nvars)
		for i := uint64(0); i < nvars; i++ {
			k, err := r.String()
			if err != nil {
				return s.respondErr(f.ID, CodeBadRequest, err.Error())
			}
			v, err := r.String()
			if err != nil {
				return s.respondErr(f.ID, CodeBadRequest, err.Error())
			}
			vars[k] = v
		}
	}
	return s.admit(f.ID, 1, func() bool {
		doc, pr, release, ok := s.docForRead(f.ID, name)
		if !ok {
			return true
		}
		defer release()
		prep, err := s.prepare(doc, query)
		if err != nil {
			return s.respondErr(f.ID, CodeQuery, err.Error())
		}
		var res mxq.Result
		if pr != nil {
			res, err = prep.RunSnapshot(pr.snap, vars)
		} else {
			res, err = prep.Run(vars)
		}
		if err != nil {
			return s.respondErr(f.ID, CodeQuery, err.Error())
		}
		return s.respond(f.ID, StatusOK, encodeResult(res))
	})
}

func (s *session) handleUpdate(f Frame) bool {
	r := NewPayloadReader(f.Payload)
	name, err := r.String()
	if err != nil {
		return s.respondErr(f.ID, CodeBadRequest, err.Error())
	}
	mods, err := r.String()
	if err != nil {
		return s.respondErr(f.ID, CodeBadRequest, err.Error())
	}
	return s.admit(f.ID, 2, func() bool {
		e, err := s.srv.catalog.acquireEntry(name)
		if err != nil {
			return s.respondNoDoc(f.ID, name, err)
		}
		defer s.srv.catalog.release(name)
		// Serialize writers: the engine's optimistic page locks turn a
		// racing update into tx.ErrConflict; queueing on the entry's
		// write mutex gives the wire protocol first-come-first-served
		// updates instead of surfacing the conflict to clients.
		e.wmu.Lock()
		defer e.wmu.Unlock()
		res, err := e.doc.Update(mods)
		if err != nil {
			return s.respondErr(f.ID, CodeQuery, err.Error())
		}
		var p PayloadBuilder
		p.Uvarint(uint64(res.Ops)).Uvarint(uint64(res.Affected))
		return s.respond(f.ID, StatusOK, p.Bytes())
	})
}

func (s *session) handleExplain(f Frame) bool {
	r := NewPayloadReader(f.Payload)
	name, err := r.String()
	if err != nil {
		return s.respondErr(f.ID, CodeBadRequest, err.Error())
	}
	query, err := r.String()
	if err != nil {
		return s.respondErr(f.ID, CodeBadRequest, err.Error())
	}
	return s.admit(f.ID, 1, func() bool {
		doc, _, release, ok := s.docForRead(f.ID, name)
		if !ok {
			return true
		}
		defer release()
		prep, err := s.prepare(doc, query)
		if err != nil {
			return s.respondErr(f.ID, CodeQuery, err.Error())
		}
		var p PayloadBuilder
		p.String(prep.Explain())
		return s.respond(f.ID, StatusOK, p.Bytes())
	})
}

func (s *session) handleBeginRead(f Frame) bool {
	r := NewPayloadReader(f.Payload)
	name, err := r.String()
	if err != nil {
		return s.respondErr(f.ID, CodeBadRequest, err.Error())
	}
	if _, dup := s.reads[name]; dup {
		return s.respondErr(f.ID, CodeBadRequest, fmt.Sprintf("read already pinned on %q", name))
	}
	doc, err := s.srv.catalog.acquire(name)
	if err != nil {
		return s.respondNoDoc(f.ID, name, err)
	}
	snap := doc.Snapshot()
	s.reads[name] = &pinnedRead{doc: doc, snap: snap}
	var p PayloadBuilder
	p.Uvarint(snap.Version())
	return s.respond(f.ID, StatusOK, p.Bytes())
}

func (s *session) handleEndRead(f Frame) bool {
	r := NewPayloadReader(f.Payload)
	name, err := r.String()
	if err != nil {
		return s.respondErr(f.ID, CodeBadRequest, err.Error())
	}
	pr, ok := s.reads[name]
	if !ok {
		return s.respondErr(f.ID, CodeReadNotPinned, fmt.Sprintf("no pinned read on %q", name))
	}
	delete(s.reads, name)
	pr.snap.Close()
	s.srv.catalog.release(name)
	return s.respond(f.ID, StatusOK, nil)
}

// docForRead resolves the document a read request runs against: the
// pinned read when the session holds one (no extra catalog traffic; the
// pin's reference keeps the document attached), otherwise a fresh
// catalog reference released after the request. ok=false means the
// error response was already sent.
func (s *session) docForRead(id uint64, name string) (doc *mxq.Document, pr *pinnedRead, release func(), ok bool) {
	if pr := s.reads[name]; pr != nil {
		return pr.doc, pr, func() {}, true
	}
	doc, err := s.srv.catalog.acquire(name)
	if err != nil {
		s.respondNoDoc(id, name, err)
		return nil, nil, nil, false
	}
	return doc, nil, func() { s.srv.catalog.release(name) }, true
}

// prepare returns the session's cached compiled plan for (doc, query),
// compiling and caching on miss.
func (s *session) prepare(doc *mxq.Document, query string) (*mxq.Prepared, error) {
	key := prepKey{doc: doc, q: query}
	if p, ok := s.prepared[key]; ok {
		return p, nil
	}
	p, err := doc.Prepare(query)
	if err != nil {
		return nil, err
	}
	if len(s.prepared) >= maxPrepared {
		// Full: drop an arbitrary half. Sessions with a stable statement
		// set never hit this; one cycling through thousands of distinct
		// texts gets cache misses, not unbounded memory.
		n := 0
		for k := range s.prepared {
			delete(s.prepared, k)
			if n++; n >= maxPrepared/2 {
				break
			}
		}
	}
	s.prepared[key] = p
	return p, nil
}

// encodeResult renders a Result: uvarint count, then per item a kind
// code, the string value, and the serialized XML ("" for non-elements).
func encodeResult(res mxq.Result) []byte {
	var p PayloadBuilder
	p.Uvarint(uint64(len(res)))
	for _, it := range res {
		p.Byte(kindCodes[it.Kind])
		p.String(it.Value)
		p.String(it.XML)
	}
	return p.Bytes()
}

func (s *session) respond(id uint64, status byte, payload []byte) bool {
	return WriteFrame(s.conn, Frame{ID: id, Op: status, Payload: payload}) == nil
}

func (s *session) respondErr(id uint64, code byte, msg string) bool {
	var p PayloadBuilder
	p.String(msg)
	return s.respond(id, code, p.Bytes())
}

// respondNoDoc distinguishes "unknown document" from other open errors.
func (s *session) respondNoDoc(id uint64, name string, err error) bool {
	if errors.Is(err, mxq.ErrDatabaseClosed) {
		return s.respondErr(id, CodeShuttingDown, "server is shutting down")
	}
	if strings.Contains(err.Error(), "no document") {
		return s.respondErr(id, CodeNoDocument, fmt.Sprintf("no document %q", name))
	}
	return s.respondErr(id, CodeInternal, err.Error())
}
