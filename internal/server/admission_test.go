package server

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"mxq"
)

func TestAdmissionFastPath(t *testing.T) {
	a := newAdmission(4, 2)
	for i := 0; i < 4; i++ {
		if err := a.acquire(1); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	a.release(1)
	if err := a.acquire(1); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestAdmissionOverflow(t *testing.T) {
	a := newAdmission(1, 1)
	if err := a.acquire(1); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- a.acquire(1) }()
	waitWaiters(t, a, 1)
	// Queue full: the next acquisition is rejected immediately.
	if err := a.acquire(1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("acquire with full queue = %v, want ErrOverloaded", err)
	}
	a.release(1)
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	a.release(1)
}

func TestAdmissionFIFO(t *testing.T) {
	a := newAdmission(2, 4)
	if err := a.acquire(2); err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 2)
	// A heavy waiter queues first; a light one that *would* fit must not
	// jump it.
	heavy := make(chan error, 1)
	go func() {
		err := a.acquire(2)
		order <- 2
		heavy <- err
	}()
	waitWaiters(t, a, 1)
	light := make(chan error, 1)
	go func() {
		err := a.acquire(1)
		order <- 1
		light <- err
	}()
	waitWaiters(t, a, 2)
	a.release(2)
	if err := <-heavy; err != nil {
		t.Fatal(err)
	}
	if got := <-order; got != 2 {
		t.Fatalf("first admitted = %d, want the heavy FIFO head", got)
	}
	a.release(2)
	if err := <-light; err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionWeightClamp(t *testing.T) {
	a := newAdmission(2, 1)
	// A request heavier than the whole semaphore clamps to cap and runs
	// alone rather than deadlocking forever.
	if err := a.acquire(99); err != nil {
		t.Fatal(err)
	}
	if a.cur != 2 {
		t.Fatalf("cur = %d, want clamped 2", a.cur)
	}
	a.release(99)
	if a.cur != 0 {
		t.Fatalf("cur after release = %d", a.cur)
	}
}

func TestAdmissionClose(t *testing.T) {
	a := newAdmission(1, 4)
	if err := a.acquire(1); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- a.acquire(1) }()
	waitWaiters(t, a, 1)
	a.close()
	if err := <-queued; !errors.Is(err, errAdmissionClosed) {
		t.Fatalf("queued waiter after close = %v", err)
	}
	if err := a.acquire(1); !errors.Is(err, errAdmissionClosed) {
		t.Fatalf("acquire after close = %v", err)
	}
	a.release(1) // in-flight holder still releases cleanly
}

func waitWaiters(t *testing.T, a *admission, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		a.mu.Lock()
		got := len(a.waiters)
		a.mu.Unlock()
		if got == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("waiters = %d, want %d", got, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	var p PayloadBuilder
	p.Uvarint(7).String("hello").Byte(0xAB).String("").Uvarint(1 << 40)
	r := NewPayloadReader(p.Bytes())
	if n, err := r.Uvarint(); err != nil || n != 7 {
		t.Fatalf("uvarint = %d, %v", n, err)
	}
	if s, err := r.String(); err != nil || s != "hello" {
		t.Fatalf("string = %q, %v", s, err)
	}
	if b, err := r.Byte(); err != nil || b != 0xAB {
		t.Fatalf("byte = %x, %v", b, err)
	}
	if s, err := r.String(); err != nil || s != "" {
		t.Fatalf("empty string = %q, %v", s, err)
	}
	if n, err := r.Uvarint(); err != nil || n != 1<<40 {
		t.Fatalf("big uvarint = %d, %v", n, err)
	}
	if _, err := r.Uvarint(); err == nil {
		t.Fatal("read past end should error")
	}
}

func TestPayloadTruncated(t *testing.T) {
	var p PayloadBuilder
	p.String("hello")
	raw := p.Bytes()
	r := NewPayloadReader(raw[:len(raw)-2])
	if _, err := r.String(); err == nil {
		t.Fatal("truncated string should error")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Frame{ID: 42, Op: OpQuery, Payload: []byte("payload")}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Op != in.Op || string(out.Payload) != "payload" {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestFrameLimits(t *testing.T) {
	// Length below the fixed header is malformed.
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 4, 1, 2, 3, 4})
	if _, err := ReadFrame(&buf, 0); err == nil {
		t.Fatal("undersized frame should error")
	}
	// Length above the cap is rejected before any allocation.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf, 1024); err == nil {
		t.Fatal("oversized frame should error")
	}
}

// TestOverloadFrames drives overload end to end over the wire: with the
// single execution slot held and the wait queue full, a query must come
// back as a fast CodeOverloaded frame — and succeed once capacity frees.
func TestOverloadFrames(t *testing.T) {
	db, err := mxq.Open(mxq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.LoadXMLString("lib", "<lib><b>x</b></lib>"); err != nil {
		t.Fatal(err)
	}
	srv := New(Config{DB: db, MaxConcurrent: 1, MaxWaiters: 1})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Shutdown(2 * time.Second)

	// Occupy the only slot and fill the queue from the test side.
	if err := srv.adm.acquire(1); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- srv.adm.acquire(1) }()
	waitWaiters(t, srv.adm, 1)

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var p PayloadBuilder
	p.String("lib").String("//b").Uvarint(0)
	if err := WriteFrame(conn, Frame{ID: 1, Op: OpQuery, Payload: p.Bytes()}); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != 1 || f.Op != CodeOverloaded {
		t.Fatalf("frame under overload = id %d op %d, want CodeOverloaded", f.ID, f.Op)
	}

	srv.adm.release(1)
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
	srv.adm.release(1)

	if err := WriteFrame(conn, Frame{ID: 2, Op: OpQuery, Payload: p.Bytes()}); err != nil {
		t.Fatal(err)
	}
	f, err = ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != 2 || f.Op != StatusOK {
		t.Fatalf("frame after release = id %d op %d, want StatusOK", f.ID, f.Op)
	}
}
