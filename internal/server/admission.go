package server

import (
	"errors"
	"sync"
)

// errAdmissionClosed is returned to waiters when the server drains.
var errAdmissionClosed = errors.New("server: admission closed")

// admission is a weighted semaphore with a bounded wait queue: the
// server's back-pressure valve. At most cap weight units execute
// concurrently; up to maxWait acquisitions queue (FIFO, so a heavy
// request cannot be starved by a stream of light ones); anything beyond
// that is rejected immediately with ErrOverloaded — the caller turns
// that into a fast error frame, so overload costs the server a constant
// amount of memory per connection instead of an unbounded queue.
type admission struct {
	mu      sync.Mutex
	cap     int64
	cur     int64
	maxWait int
	waiters []*waiter // FIFO
	closed  bool
}

type waiter struct {
	need  int64
	ready chan error
}

// newAdmission builds the semaphore; weights beyond cap are clamped so
// a single heavy request can always run (alone).
func newAdmission(capacity int64, maxWait int) *admission {
	if capacity < 1 {
		capacity = 1
	}
	return &admission{cap: capacity, maxWait: maxWait}
}

// acquire obtains weight units, queueing (bounded) when the semaphore is
// full. It returns ErrOverloaded when the wait queue is full too, and
// errAdmissionClosed when the server drained while waiting.
func (a *admission) acquire(weight int64) error {
	if weight > a.cap {
		weight = a.cap
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return errAdmissionClosed
	}
	// FIFO: even if capacity is free, earlier waiters go first.
	if len(a.waiters) == 0 && a.cur+weight <= a.cap {
		a.cur += weight
		a.mu.Unlock()
		return nil
	}
	if len(a.waiters) >= a.maxWait {
		a.mu.Unlock()
		return ErrOverloaded
	}
	w := &waiter{need: weight, ready: make(chan error, 1)}
	a.waiters = append(a.waiters, w)
	a.mu.Unlock()
	return <-w.ready
}

// release returns weight units and wakes queued waiters in order.
func (a *admission) release(weight int64) {
	if weight > a.cap {
		weight = a.cap
	}
	a.mu.Lock()
	a.cur -= weight
	if a.cur < 0 {
		a.cur = 0
	}
	a.wakeLocked()
	a.mu.Unlock()
}

// wakeLocked admits queued waiters while capacity lasts.
func (a *admission) wakeLocked() {
	for len(a.waiters) > 0 {
		w := a.waiters[0]
		if a.cur+w.need > a.cap {
			return
		}
		a.cur += w.need
		a.waiters = a.waiters[1:]
		w.ready <- nil
	}
}

// close fails every queued waiter and rejects future acquisitions;
// in-flight holders release normally.
func (a *admission) close() {
	a.mu.Lock()
	a.closed = true
	ws := a.waiters
	a.waiters = nil
	a.mu.Unlock()
	for _, w := range ws {
		w.ready <- errAdmissionClosed
	}
}
