// Package shred turns XML text into the neutral pre-ordered node table
// that every store of the reproduction builds from (the "document
// shredder" of the paper). The shredder walks the document once with a
// streaming parser, assigning pre ranks in arrival order and computing
// size (live descendant count) and level on the fly — exactly the
// counting pass that defines the pre/size/level encoding of Figure 2.
package shred

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"mxq/internal/xenc"
)

// Attr is a raw (uninterned) attribute.
type Attr struct {
	Name  string
	Value string
}

// Node is one shredded node in document order.
type Node struct {
	Kind  xenc.Kind
	Name  string // element name or PI target
	Value string // text/comment/PI content
	Size  int32  // descendant count
	Level int16  // depth; the root of the tree (or fragment root) is 0
	Attrs []Attr
}

// Tree is a forest of shredded nodes in document order. A full document
// has exactly one level-0 node (the root element); XUpdate content
// fragments may have several.
type Tree struct {
	Nodes []Node
}

// Roots returns the indices of the level-0 nodes.
func (t *Tree) Roots() []int {
	var out []int
	for i := range t.Nodes {
		if t.Nodes[i].Level == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Options configure the shredder.
type Options struct {
	// PreserveWhitespace keeps text nodes that consist only of whitespace.
	// By default they are dropped (boundary-whitespace stripping), which is
	// what the MonetDB/XQuery shredder does for data-centric documents.
	PreserveWhitespace bool
}

// Parse shreds a complete XML document. The document must have a single
// root element.
func Parse(r io.Reader, opts Options) (*Tree, error) {
	t, err := parse(r, opts, true)
	if err != nil {
		return nil, err
	}
	roots := t.Roots()
	if len(roots) != 1 || t.Nodes[roots[0]].Kind != xenc.KindElem {
		return nil, fmt.Errorf("shred: document must have exactly one root element, got %d roots", len(roots))
	}
	return t, nil
}

// ParseFragment shreds a well-formed XML fragment: a sequence of elements,
// text, comments and processing instructions. Used for XUpdate content.
func ParseFragment(s string, opts Options) (*Tree, error) {
	return parse(strings.NewReader(s), opts, false)
}

// parse shreds tokens; document mode additionally drops document-level
// comments and PIs (fragments keep theirs — they become real children).
func parse(r io.Reader, opts Options, document bool) (*Tree, error) {
	dec := xml.NewDecoder(r)
	t := &Tree{}
	var stack []int // indices of open elements
	var depth int16
	flushText := func(s string) {
		if s == "" {
			return
		}
		if !opts.PreserveWhitespace && strings.TrimSpace(s) == "" {
			return
		}
		// Coalesce with a directly preceding text sibling (encoding/xml
		// may split character data around entity references).
		if n := len(t.Nodes); n > 0 {
			last := &t.Nodes[n-1]
			if last.Kind == xenc.KindText && last.Level == depth && last.Size == 0 {
				last.Value += s
				return
			}
		}
		t.Nodes = append(t.Nodes, Node{Kind: xenc.KindText, Value: s, Level: depth})
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("shred: %w", err)
		}
		switch tk := tok.(type) {
		case xml.StartElement:
			var attrs []Attr
			if len(tk.Attr) > 0 {
				attrs = make([]Attr, 0, len(tk.Attr))
				for _, a := range tk.Attr {
					attrs = append(attrs, Attr{Name: attrName(a.Name), Value: a.Value})
				}
			}
			t.Nodes = append(t.Nodes, Node{
				Kind:  xenc.KindElem,
				Name:  elemName(tk.Name),
				Level: depth,
				Attrs: attrs,
			})
			stack = append(stack, len(t.Nodes)-1)
			depth++
		case xml.EndElement:
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			depth--
			t.Nodes[top].Size = int32(len(t.Nodes) - 1 - top)
		case xml.CharData:
			flushText(string(tk))
		case xml.Comment:
			// Document-level comments are dropped so that the first tuple
			// of any full document is always its root element (which is
			// what Root() == pre 0 in the read-only schema relies on).
			if document && depth == 0 && len(stack) == 0 {
				continue
			}
			t.Nodes = append(t.Nodes, Node{Kind: xenc.KindComment, Value: string(tk), Level: depth})
		case xml.ProcInst:
			// Likewise for document-level PIs, which also covers the XML
			// declaration that encoding/xml reports as a <?xml?> ProcInst.
			if document && depth == 0 && len(stack) == 0 {
				continue
			}
			t.Nodes = append(t.Nodes, Node{
				Kind:  xenc.KindPI,
				Name:  tk.Target,
				Value: string(tk.Inst),
				Level: depth,
			})
		case xml.Directive:
			// DOCTYPE and friends carry no tree content; skip.
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("shred: %d unclosed elements", len(stack))
	}
	return t, nil
}

// elemName flattens a resolved xml.Name. The reproduction works with
// local names (XMark and the paper's examples are namespace-free); a
// non-empty namespace is kept as a "{uri}local" expanded name so distinct
// namespaces cannot collide.
func elemName(n xml.Name) string {
	if n.Space == "" {
		return n.Local
	}
	return "{" + n.Space + "}" + n.Local
}

func attrName(n xml.Name) string {
	// xmlns declarations arrive as Space=="xmlns"; keep them readable.
	if n.Space == "" || n.Space == "xmlns" {
		return n.Local
	}
	return "{" + n.Space + "}" + n.Local
}

// Subtree extracts the subtree rooted at index i as a standalone Tree
// (levels rebased to 0). It is used by update operations that relocate or
// copy document fragments.
func (t *Tree) Subtree(i int) *Tree {
	root := t.Nodes[i]
	end := i + int(root.Size) + 1
	out := &Tree{Nodes: make([]Node, end-i)}
	base := root.Level
	for j := i; j < end; j++ {
		n := t.Nodes[j]
		n.Level -= base
		n.Attrs = append([]Attr(nil), n.Attrs...)
		out.Nodes[j-i] = n
	}
	return out
}

// Builder assembles a Tree programmatically; the XMark generator and the
// XUpdate element constructors use it to avoid a parse round-trip.
type Builder struct {
	t     Tree
	stack []int
	depth int16
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Start opens an element.
func (b *Builder) Start(name string, attrs ...Attr) *Builder {
	b.t.Nodes = append(b.t.Nodes, Node{Kind: xenc.KindElem, Name: name, Level: b.depth, Attrs: attrs})
	b.stack = append(b.stack, len(b.t.Nodes)-1)
	b.depth++
	return b
}

// Open reports whether an element is currently open.
func (b *Builder) Open() bool { return len(b.stack) > 0 }

// Attr adds an attribute to the innermost open element. It panics if no
// element is open.
func (b *Builder) Attr(name, value string) *Builder {
	if len(b.stack) == 0 {
		panic("shred: Builder.Attr without an open element")
	}
	top := b.stack[len(b.stack)-1]
	b.t.Nodes[top].Attrs = append(b.t.Nodes[top].Attrs, Attr{Name: name, Value: value})
	return b
}

// End closes the most recently opened element.
func (b *Builder) End() *Builder {
	top := b.stack[len(b.stack)-1]
	b.stack = b.stack[:len(b.stack)-1]
	b.depth--
	b.t.Nodes[top].Size = int32(len(b.t.Nodes) - 1 - top)
	return b
}

// Text appends a text node.
func (b *Builder) Text(s string) *Builder {
	b.t.Nodes = append(b.t.Nodes, Node{Kind: xenc.KindText, Value: s, Level: b.depth})
	return b
}

// Comment appends a comment node.
func (b *Builder) Comment(s string) *Builder {
	b.t.Nodes = append(b.t.Nodes, Node{Kind: xenc.KindComment, Value: s, Level: b.depth})
	return b
}

// PI appends a processing instruction.
func (b *Builder) PI(target, inst string) *Builder {
	b.t.Nodes = append(b.t.Nodes, Node{Kind: xenc.KindPI, Name: target, Value: inst, Level: b.depth})
	return b
}

// Elem writes a leaf element with optional text content in one call.
func (b *Builder) Elem(name, text string, attrs ...Attr) *Builder {
	b.Start(name, attrs...)
	if text != "" {
		b.Text(text)
	}
	return b.End()
}

// Tree returns the built forest. It panics if elements remain open.
func (b *Builder) Tree() *Tree {
	if len(b.stack) != 0 {
		panic(fmt.Sprintf("shred: Builder.Tree with %d open elements", len(b.stack)))
	}
	return &b.t
}
