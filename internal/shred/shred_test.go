package shred

import (
	"strings"
	"testing"

	"mxq/internal/xenc"
)

// paperDoc is the example document of Figure 2.
const paperDoc = `<a><b><c><d></d><e></e></c></b><f><g></g><h><i></i><j></j></h></f></a>`

func TestParsePaperExample(t *testing.T) {
	tr, err := Parse(strings.NewReader(paperDoc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	sizes := []int32{9, 3, 2, 0, 0, 4, 0, 2, 0, 0}
	levels := []int16{0, 1, 2, 3, 3, 1, 2, 2, 3, 3}
	if len(tr.Nodes) != len(names) {
		t.Fatalf("node count = %d, want %d", len(tr.Nodes), len(names))
	}
	for i, n := range tr.Nodes {
		if n.Name != names[i] || n.Size != sizes[i] || n.Level != levels[i] {
			t.Errorf("node %d = {%s size=%d level=%d}, want {%s size=%d level=%d}",
				i, n.Name, n.Size, n.Level, names[i], sizes[i], levels[i])
		}
	}
}

func TestParseTextAndAttrs(t *testing.T) {
	tr, err := Parse(strings.NewReader(`<r id="1" x="y"><p>hi</p><!--c--><?pi data?></r>`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Nodes) != 5 {
		t.Fatalf("node count = %d, want 5", len(tr.Nodes))
	}
	r := tr.Nodes[0]
	if len(r.Attrs) != 2 || r.Attrs[0] != (Attr{"id", "1"}) || r.Attrs[1] != (Attr{"x", "y"}) {
		t.Fatalf("attrs = %v", r.Attrs)
	}
	if tr.Nodes[2].Kind != xenc.KindText || tr.Nodes[2].Value != "hi" {
		t.Fatalf("text node = %+v", tr.Nodes[2])
	}
	if tr.Nodes[3].Kind != xenc.KindComment || tr.Nodes[3].Value != "c" {
		t.Fatalf("comment node = %+v", tr.Nodes[3])
	}
	if tr.Nodes[4].Kind != xenc.KindPI || tr.Nodes[4].Name != "pi" || tr.Nodes[4].Value != "data" {
		t.Fatalf("pi node = %+v", tr.Nodes[4])
	}
	if r.Size != 4 {
		t.Fatalf("root size = %d, want 4", r.Size)
	}
}

func TestWhitespaceStripping(t *testing.T) {
	doc := "<r>\n  <a>x</a>\n  <b/>\n</r>"
	tr, err := Parse(strings.NewReader(doc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// r, a, text(x), b — the indentation text must be gone.
	if len(tr.Nodes) != 4 {
		t.Fatalf("node count = %d, want 4: %+v", len(tr.Nodes), tr.Nodes)
	}
	tr, err = Parse(strings.NewReader(doc), Options{PreserveWhitespace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Nodes) != 7 {
		t.Fatalf("preserved node count = %d, want 7", len(tr.Nodes))
	}
}

func TestEntityCoalescing(t *testing.T) {
	tr, err := Parse(strings.NewReader(`<r>a&amp;b</r>`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Nodes) != 2 {
		t.Fatalf("node count = %d, want 2 (text must coalesce)", len(tr.Nodes))
	}
	if tr.Nodes[1].Value != "a&b" {
		t.Fatalf("text = %q, want \"a&b\"", tr.Nodes[1].Value)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, doc := range []string{
		`<a><b></a></b>`,
		`<a>`,
		`plain text`,
		`<a/><b/>`, // two roots
	} {
		if _, err := Parse(strings.NewReader(doc), Options{}); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", doc)
		}
	}
}

func TestParseFragmentForest(t *testing.T) {
	tr, err := ParseFragment(`<k><l/><m/></k><n/>`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	roots := tr.Roots()
	if len(roots) != 2 || roots[0] != 0 || roots[1] != 3 {
		t.Fatalf("roots = %v, want [0 3]", roots)
	}
	if tr.Nodes[0].Size != 2 {
		t.Fatalf("k size = %d, want 2", tr.Nodes[0].Size)
	}
}

func TestSubtree(t *testing.T) {
	tr, err := Parse(strings.NewReader(paperDoc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Subtree rooted at f (index 5): f,g,h,i,j rebased to level 0.
	sub := tr.Subtree(5)
	if len(sub.Nodes) != 5 || sub.Nodes[0].Name != "f" || sub.Nodes[0].Level != 0 {
		t.Fatalf("subtree = %+v", sub.Nodes)
	}
	if sub.Nodes[4].Name != "j" || sub.Nodes[4].Level != 2 {
		t.Fatalf("j = %+v", sub.Nodes[4])
	}
	// Mutating the copy must not touch the original.
	sub.Nodes[0].Name = "zz"
	if tr.Nodes[5].Name != "f" {
		t.Fatal("Subtree aliases the original")
	}
}

func TestBuilder(t *testing.T) {
	tr := NewBuilder().
		Start("r", Attr{"id", "1"}).
		Elem("name", "iron kettle").
		Start("sub").Text("t").Comment("c").End().
		PI("tgt", "body").
		End().
		Tree()
	if len(tr.Nodes) != 7 {
		t.Fatalf("node count = %d, want 7", len(tr.Nodes))
	}
	if tr.Nodes[0].Size != 6 {
		t.Fatalf("root size = %d, want 6", tr.Nodes[0].Size)
	}
	if tr.Nodes[3].Name != "sub" || tr.Nodes[3].Size != 2 || tr.Nodes[3].Level != 1 {
		t.Fatalf("sub = %+v", tr.Nodes[3])
	}
}

func TestBuilderPanicsOnOpenElement(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic with open element")
		}
	}()
	NewBuilder().Start("a").Tree()
}

// Size/level invariants on any parse result: sizes partition the tree,
// levels follow a stack discipline.
func TestParseInvariants(t *testing.T) {
	docs := []string{
		paperDoc,
		`<r><a><b><c><d>deep</d></c></b></a><e/><f><g/><h/></f></r>`,
		`<x>t1<y>t2</y>t3<!--c--><z><w a="b"/></z></x>`,
	}
	for _, doc := range docs {
		tr, err := Parse(strings.NewReader(doc), Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkTreeInvariants(t, tr)
	}
}

func checkTreeInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	for i, n := range tr.Nodes {
		end := i + int(n.Size)
		if end >= len(tr.Nodes)+1 {
			t.Fatalf("node %d size %d overruns tree", i, n.Size)
		}
		// Every node in (i, i+size] must be deeper than n; the node after
		// the region (if any) must not be.
		for j := i + 1; j <= end; j++ {
			if tr.Nodes[j].Level <= n.Level {
				t.Fatalf("node %d (level %d) inside region of %d (level %d)", j, tr.Nodes[j].Level, i, n.Level)
			}
		}
		if end+1 < len(tr.Nodes) && tr.Nodes[end+1].Level > n.Level {
			t.Fatalf("region of node %d too small", i)
		}
	}
}
