// Package xenc defines the shared XML encoding types of the
// MonetDB/XQuery reproduction: the pre/size/level node numbering scheme
// (Grust's pre/post plane in its pre/size/level form, cf. Figure 2 of the
// paper), node kinds, interned qualified names, and the DocView interface
// that every document store (read-only, paged-updatable, naive) implements.
//
// Encoding invariants:
//
//   - Nodes are identified by their pre rank: the order in which opening
//     tags are seen during a sequential parse.
//   - size(v) is the number of live descendant nodes of v. In a store
//     without free space (the read-only schema) the classic equivalence
//     post = pre + size - level holds exactly.
//   - level(v) is the depth of v (the document root element has level 0).
//   - A store may interleave *unused tuples* between live nodes (the
//     updatable schema of Section 3). Unused tuples report
//     Level() == LevelUnused; their Size() is the number of directly
//     following consecutive unused tuples within the same logical page, so
//     scans can skip over free space in O(1) per run.
package xenc

import "fmt"

// Pre is a rank in the logical document-order view (the paper's "pre").
type Pre = int32

// Pos is a physical tuple position in the pos/size/level table (the
// paper's "pos"). In the read-only store Pre and Pos coincide.
type Pos = int32

// NodeID is an immutable node number that never changes during the node's
// lifetime (Section 3.1). External tables (attributes) reference NodeIDs.
type NodeID = int32

// Level is a tree depth. LevelUnused marks an unused tuple.
type Level = int16

// Size counts live descendant nodes (or, on an unused tuple, the length of
// the free run that directly follows it).
type Size = int32

const (
	// LevelUnused is the NULL level of an unused tuple.
	LevelUnused Level = -1
	// NoNode marks a tuple with no live node (unused tuples).
	NoNode NodeID = -1
	// NoName marks kinds without a qualified name (text, comment).
	NoName int32 = -1
	// NoPre reports a failed NodeID -> Pre translation.
	NoPre Pre = -1
)

// Kind classifies a live node.
type Kind uint8

// Node kinds, following the paper's schema (Figure 5): elements, text
// nodes, comments and processing instructions live in the pre/size/level
// table; attributes live in a side table.
const (
	KindElem Kind = iota
	KindText
	KindComment
	KindPI
	KindAttr
	kindSentinel
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindElem:
		return "element"
	case KindText:
		return "text"
	case KindComment:
		return "comment"
	case KindPI:
		return "processing-instruction"
	case KindAttr:
		return "attribute"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is a defined node kind.
func (k Kind) Valid() bool { return k < kindSentinel }

// Attr is one attribute of an element: an interned name and its value.
type Attr struct {
	Name int32  // qname id in the document's QNamePool
	Val  string // attribute value
}

// DocView is the read interface over an encoded XML document. The
// staircase join, the XPath evaluator and the serializer operate purely on
// this interface, so they run unmodified on the read-only schema and on
// the paged updatable schema — exactly the property the paper obtains by
// rebuilding the pre/size/level view with memory mapping.
//
// Pre ranges over [0, Len()). Tuples with Level(p) == LevelUnused are free
// space and must be skipped; all other accessors are only meaningful on
// used tuples.
type DocView interface {
	// Len returns the number of tuples in the view, including unused ones.
	Len() Pre
	// LiveNodes returns the number of live (used) nodes.
	LiveNodes() int
	// Size returns the live descendant count of the node at p, or the
	// free-run length if p is unused.
	Size(p Pre) Size
	// Level returns the depth of the node at p, or LevelUnused.
	Level(p Pre) Level
	// Kind returns the node kind at p (undefined for unused tuples).
	Kind(p Pre) Kind
	// Name returns the interned qualified-name id at p, or NoName.
	Name(p Pre) int32
	// Value returns the textual content for text/comment/PI nodes ("" for
	// elements).
	Value(p Pre) string
	// NodeOf returns the immutable node id of the tuple at p, or NoNode.
	NodeOf(p Pre) NodeID
	// PreOf translates an immutable node id back to its current pre rank,
	// or NoPre if the node does not exist (deleted or never allocated).
	PreOf(n NodeID) Pre
	// Attrs returns the attributes of the element at p in document order.
	// The returned slice must not be modified.
	Attrs(p Pre) []Attr
	// AttrValue returns the value of the named attribute of the element at
	// p, if present.
	AttrValue(p Pre, name int32) (string, bool)
	// Names exposes the document's interned qualified names.
	Names() *QNamePool
	// Root returns the pre rank of the root element (the first used
	// tuple).
	Root() Pre
}

// PostOf computes the post rank of a used tuple under the classic
// equivalence post = pre + size - level. It is exact on stores without
// free space and is exercised by the Figure 2 property tests.
func PostOf(v DocView, p Pre) int32 {
	return p + v.Size(p) - int32(v.Level(p))
}

// IsUsed reports whether the tuple at p holds a live node.
func IsUsed(v DocView, p Pre) bool {
	return p >= 0 && p < v.Len() && v.Level(p) != LevelUnused
}

// SkipFree returns the first used tuple at or after p, hopping over free
// runs using their stored run lengths (the paper: "the size column holds
// the amount of directly following consecutive unused tuples. This allows
// the staircase-join to skip over unused tuples quickly."). It returns
// v.Len() if no used tuple remains.
func SkipFree(v DocView, p Pre) Pre {
	n := v.Len()
	for p < n && v.Level(p) == LevelUnused {
		p += v.Size(p) + 1
	}
	if p > n {
		p = n
	}
	return p
}

// PrevUsed returns the last used tuple strictly before p, or -1. Free runs
// are crossed one tuple at a time; runs are short (bounded by the logical
// page size), and backward steps are only taken by the parent/ancestor
// and preceding axes.
func PrevUsed(v DocView, p Pre) Pre {
	for p--; p >= 0; p-- {
		if v.Level(p) != LevelUnused {
			return p
		}
	}
	return -1
}
