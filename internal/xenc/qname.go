package xenc

// QNamePool interns qualified names (the paper's qn table, Figure 5).
// Elements and attributes reference names by dense integer id, which is
// what makes name tests a single integer comparison during axis steps.
//
// The zero value is not ready for use; call NewQNamePool.
type QNamePool struct {
	names []string
	ids   map[string]int32
}

// NewQNamePool returns an empty pool.
func NewQNamePool() *QNamePool {
	return &QNamePool{ids: make(map[string]int32)}
}

// Intern returns the id for name, adding it to the pool if new.
func (q *QNamePool) Intern(name string) int32 {
	if id, ok := q.ids[name]; ok {
		return id
	}
	id := int32(len(q.names))
	q.names = append(q.names, name)
	q.ids[name] = id
	return id
}

// Lookup returns the id for name without interning it.
func (q *QNamePool) Lookup(name string) (int32, bool) {
	id, ok := q.ids[name]
	return id, ok
}

// Name returns the string for an interned id. It panics on ids that were
// never handed out, which always indicates memory corruption upstream.
func (q *QNamePool) Name(id int32) string {
	if id == NoName {
		return ""
	}
	return q.names[id]
}

// Len returns the number of interned names.
func (q *QNamePool) Len() int { return len(q.names) }

// Clone returns an independent copy of the pool. Transactions clone the
// pool so aborted updates cannot leak names into the base document.
func (q *QNamePool) Clone() *QNamePool {
	c := &QNamePool{
		names: append([]string(nil), q.names...),
		ids:   make(map[string]int32, len(q.ids)),
	}
	for k, v := range q.ids {
		c.ids[k] = v
	}
	return c
}
