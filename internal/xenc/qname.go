package xenc

import "sync"

// QNamePool interns qualified names (the paper's qn table, Figure 5).
// Elements and attributes reference names by dense integer id, which is
// what makes name tests a single integer comparison during axis steps.
//
// The pool is append-only and safe for concurrent use: with page-grained
// copy-on-write snapshots, the base store and all of its snapshots share
// a single pool, so a writer may intern a new name while readers resolve
// ids. Names interned by an aborted transaction stay in the pool
// unreferenced, which is harmless (ids are only meaningful through the
// column data that references them).
//
// The zero value is not ready for use; call NewQNamePool.
type QNamePool struct {
	mu    sync.RWMutex
	names []string
	ids   map[string]int32
}

// NewQNamePool returns an empty pool.
func NewQNamePool() *QNamePool {
	return &QNamePool{ids: make(map[string]int32)}
}

// Intern returns the id for name, adding it to the pool if new.
func (q *QNamePool) Intern(name string) int32 {
	q.mu.Lock()
	defer q.mu.Unlock()
	if id, ok := q.ids[name]; ok {
		return id
	}
	id := int32(len(q.names))
	q.names = append(q.names, name)
	q.ids[name] = id
	return id
}

// Lookup returns the id for name without interning it.
func (q *QNamePool) Lookup(name string) (int32, bool) {
	q.mu.RLock()
	defer q.mu.RUnlock()
	id, ok := q.ids[name]
	return id, ok
}

// Name returns the string for an interned id. It panics on ids that were
// never handed out, which always indicates memory corruption upstream.
func (q *QNamePool) Name(id int32) string {
	if id == NoName {
		return ""
	}
	q.mu.RLock()
	defer q.mu.RUnlock()
	return q.names[id]
}

// Len returns the number of interned names.
func (q *QNamePool) Len() int {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return len(q.names)
}

// NamesList returns a point-in-time copy of all interned names in id
// order (used by checkpointing).
func (q *QNamePool) NamesList() []string {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return append([]string(nil), q.names...)
}
