package xenc

import "testing"

// fakeView is a minimal DocView over explicit size/level columns, used to
// unit-test the free-run helpers without a concrete store.
type fakeView struct {
	size  []int32
	level []Level
}

func (f *fakeView) Len() Pre                            { return int32(len(f.size)) }
func (f *fakeView) LiveNodes() int                      { return 0 }
func (f *fakeView) Size(p Pre) Size                     { return f.size[p] }
func (f *fakeView) Level(p Pre) Level                   { return f.level[p] }
func (f *fakeView) Kind(Pre) Kind                       { return KindElem }
func (f *fakeView) Name(Pre) int32                      { return NoName }
func (f *fakeView) Value(Pre) string                    { return "" }
func (f *fakeView) NodeOf(p Pre) NodeID                 { return p }
func (f *fakeView) PreOf(n NodeID) Pre                  { return n }
func (f *fakeView) Attrs(Pre) []Attr                    { return nil }
func (f *fakeView) AttrValue(Pre, int32) (string, bool) { return "", false }
func (f *fakeView) Names() *QNamePool                   { return nil }
func (f *fakeView) Root() Pre                           { return SkipFree(f, 0) }

func TestSkipFree(t *testing.T) {
	// used, free-run(2), used, free-run(1), used
	v := &fakeView{
		size:  []int32{0, 1, 0, 0, 0, 0},
		level: []Level{0, LevelUnused, LevelUnused, 1, LevelUnused, 1},
	}
	cases := []struct{ in, want Pre }{
		{0, 0}, {1, 3}, {2, 3}, {3, 3}, {4, 5}, {5, 5}, {6, 6},
	}
	for _, c := range cases {
		if got := SkipFree(v, c.in); got != c.want {
			t.Errorf("SkipFree(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestSkipFreeAllFree(t *testing.T) {
	v := &fakeView{
		size:  []int32{3, 2, 1, 0},
		level: []Level{LevelUnused, LevelUnused, LevelUnused, LevelUnused},
	}
	if got := SkipFree(v, 0); got != 4 {
		t.Fatalf("SkipFree over trailing run = %d, want Len()=4", got)
	}
}

func TestPrevUsed(t *testing.T) {
	v := &fakeView{
		size:  []int32{0, 1, 0, 0},
		level: []Level{0, LevelUnused, LevelUnused, 1},
	}
	if got := PrevUsed(v, 3); got != 0 {
		t.Fatalf("PrevUsed(3) = %d, want 0", got)
	}
	if got := PrevUsed(v, 0); got != -1 {
		t.Fatalf("PrevUsed(0) = %d, want -1", got)
	}
}

func TestIsUsed(t *testing.T) {
	v := &fakeView{size: []int32{0, 0}, level: []Level{0, LevelUnused}}
	if !IsUsed(v, 0) || IsUsed(v, 1) || IsUsed(v, -1) || IsUsed(v, 2) {
		t.Fatal("IsUsed misclassifies")
	}
}

func TestPostOf(t *testing.T) {
	// Single root with one child: root pre 0 size 1 level 0 -> post 1;
	// child pre 1 size 0 level 1 -> post 0.
	v := &fakeView{size: []int32{1, 0}, level: []Level{0, 1}}
	if PostOf(v, 0) != 1 || PostOf(v, 1) != 0 {
		t.Fatalf("post = %d,%d want 1,0", PostOf(v, 0), PostOf(v, 1))
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindElem: "element", KindText: "text", KindComment: "comment",
		KindPI: "processing-instruction", KindAttr: "attribute",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q", k, k.String())
		}
		if !k.Valid() {
			t.Errorf("Kind(%d) not valid", k)
		}
	}
	if Kind(200).Valid() {
		t.Error("Kind(200) reported valid")
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind has empty String()")
	}
}

func TestQNamePool(t *testing.T) {
	q := NewQNamePool()
	a := q.Intern("item")
	b := q.Intern("person")
	if a == b || q.Intern("item") != a {
		t.Fatal("interning broken")
	}
	if q.Name(a) != "item" || q.Name(NoName) != "" {
		t.Fatal("Name lookup broken")
	}
	if id, ok := q.Lookup("person"); !ok || id != b {
		t.Fatal("Lookup broken")
	}
	if _, ok := q.Lookup("absent"); ok {
		t.Fatal("Lookup of absent name succeeded")
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	if got := q.NamesList(); len(got) != 2 || got[0] != "item" || got[1] != "person" {
		t.Fatalf("NamesList = %v", got)
	}
}
