package serialize

import (
	"strings"
	"testing"

	"mxq/internal/core"
	"mxq/internal/rostore"
	"mxq/internal/shred"
	"mxq/internal/xenc"
)

func roView(t *testing.T, doc string) xenc.DocView {
	t.Helper()
	tr, err := shred.Parse(strings.NewReader(doc), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := rostore.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTripCompact(t *testing.T) {
	docs := []string{
		`<a><b><c><d/><e/></c></b><f><g/><h><i/><j/></h></f></a>`,
		`<r id="1"><p>hello</p><q x="y">txt<s/></q></r>`,
		`<r><!--note--><?pi body?><p>t</p></r>`,
		`<r>a&amp;b &lt;tag&gt;</r>`,
		`<r a="it&quot;s &lt;ok&gt;"/>`,
	}
	for _, doc := range docs {
		v := roView(t, doc)
		got, err := String(v, v.Root(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Re-shred the output; the trees must be identical.
		tr2, err := shred.Parse(strings.NewReader(got), shred.Options{})
		if err != nil {
			t.Fatalf("reparse of %q: %v", got, err)
		}
		v2, err := rostore.Build(tr2)
		if err != nil {
			t.Fatal(err)
		}
		got2, err := String(v2, v2.Root(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got != got2 {
			t.Errorf("round trip unstable:\n1: %s\n2: %s", got, got2)
		}
	}
}

func TestExactOutput(t *testing.T) {
	v := roView(t, `<r id="1"><p>hello</p><empty/></r>`)
	got, err := String(v, v.Root(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := `<r id="1"><p>hello</p><empty/></r>`
	if got != want {
		t.Errorf("serialized = %q, want %q", got, want)
	}
}

func TestSubtreeSerialization(t *testing.T) {
	v := roView(t, `<r><p a="1">x</p><q/></r>`)
	got, err := String(v, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != `<p a="1">x</p>` {
		t.Errorf("subtree = %q", got)
	}
}

func TestSerializePagedStoreWithHoles(t *testing.T) {
	tr, err := shred.Parse(strings.NewReader(`<r><a>1</a><b>2</b><c>3</c></r>`), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Build(tr, core.Options{PageSize: 8, FillFactor: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	// Delete b to punch a hole.
	var b xenc.Pre = -1
	for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
		if s.Kind(p) == xenc.KindElem && s.Names().Name(s.Name(p)) == "b" {
			b = p
		}
	}
	if err := s.Delete(b); err != nil {
		t.Fatal(err)
	}
	got, err := String(s, s.Root(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != `<r><a>1</a><c>3</c></r>` {
		t.Errorf("serialized after delete = %q", got)
	}
}

func TestIndented(t *testing.T) {
	v := roView(t, `<r><p><q/></p></r>`)
	got, err := String(v, v.Root(), Options{Indent: "  "})
	if err != nil {
		t.Fatal(err)
	}
	want := "<r>\n  <p>\n    <q/>\n  </p>\n</r>\n"
	if got != want {
		t.Errorf("indented = %q, want %q", got, want)
	}
}

func TestTextEscaping(t *testing.T) {
	v := roView(t, `<r>a&amp;b</r>`)
	got, err := String(v, v.Root(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != `<r>a&amp;b</r>` {
		t.Errorf("escaped = %q", got)
	}
}

func TestErrorOnUnusedTuple(t *testing.T) {
	tr, _ := shred.Parse(strings.NewReader(`<r/>`), shred.Options{})
	s, _ := core.Build(tr, core.Options{PageSize: 8, FillFactor: 0.5})
	if _, err := String(s, 5, Options{}); err == nil {
		t.Fatal("serializing an unused tuple succeeded")
	}
}
