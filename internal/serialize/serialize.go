// Package serialize renders encoded documents and subtrees back to XML
// text (the "XML Serialization" kernel extension in Figure 1). It walks
// the pre/size/level view in document order, skipping unused tuples, and
// reconstructs element nesting from the level column.
package serialize

import (
	"fmt"
	"io"
	"strings"

	"mxq/internal/xenc"
)

// Options configure serialization.
type Options struct {
	// Indent pretty-prints with the given string per nesting level.
	// Empty means compact output.
	Indent string
}

// Document writes the whole document rooted at v.Root().
func Document(w io.Writer, v xenc.DocView, opts Options) error {
	return Subtree(w, v, v.Root(), opts)
}

// Subtree writes the subtree rooted at p.
func Subtree(w io.Writer, v xenc.DocView, p xenc.Pre, opts Options) error {
	if !xenc.IsUsed(v, p) {
		return fmt.Errorf("serialize: pre %d is not a live node", p)
	}
	s := &serializer{w: w, v: v, opts: opts, base: v.Level(p)}
	if err := s.node(p); err != nil {
		return err
	}
	if opts.Indent != "" {
		return s.write("\n")
	}
	return nil
}

// String renders the subtree at p to a string.
func String(v xenc.DocView, p xenc.Pre, opts Options) (string, error) {
	var b strings.Builder
	if err := Subtree(&b, v, p, opts); err != nil {
		return "", err
	}
	return b.String(), nil
}

type serializer struct {
	w    io.Writer
	v    xenc.DocView
	opts Options
	base xenc.Level
	err  error
}

func (s *serializer) write(str string) error {
	if s.err == nil {
		_, s.err = io.WriteString(s.w, str)
	}
	return s.err
}

func (s *serializer) indent(lvl xenc.Level) {
	if s.opts.Indent == "" {
		return
	}
	s.write("\n")
	for i := xenc.Level(0); i < lvl-s.base; i++ {
		s.write(s.opts.Indent)
	}
}

// node serializes the node at p and returns after its whole region.
func (s *serializer) node(p xenc.Pre) error {
	v := s.v
	switch v.Kind(p) {
	case xenc.KindText:
		s.write(escapeText(v.Value(p)))
	case xenc.KindComment:
		s.write("<!--")
		s.write(v.Value(p))
		s.write("-->")
	case xenc.KindPI:
		s.write("<?")
		s.write(v.Names().Name(v.Name(p)))
		if inst := v.Value(p); inst != "" {
			s.write(" ")
			s.write(inst)
		}
		s.write("?>")
	case xenc.KindElem:
		name := v.Names().Name(v.Name(p))
		s.write("<")
		s.write(name)
		for _, a := range v.Attrs(p) {
			s.write(" ")
			s.write(v.Names().Name(a.Name))
			s.write(`="`)
			s.write(escapeAttr(a.Val))
			s.write(`"`)
		}
		if v.Size(p) == 0 {
			s.write("/>")
			return s.err
		}
		s.write(">")
		// Children: walk the region.
		remaining := v.Size(p)
		lvl := v.Level(p)
		q := p
		hasElemChild := false
		for remaining > 0 {
			q = xenc.SkipFree(v, q+1)
			if q >= v.Len() || v.Level(q) <= lvl {
				break
			}
			if v.Level(q) == lvl+1 {
				if v.Kind(q) != xenc.KindText {
					hasElemChild = true
				}
				if hasElemChild {
					s.indent(v.Level(q))
				}
				if err := s.node(q); err != nil {
					return err
				}
			}
			remaining--
		}
		if hasElemChild {
			s.indent(lvl)
		}
		s.write("</")
		s.write(name)
		s.write(">")
	}
	return s.err
}

func escapeText(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}

func escapeAttr(s string) string {
	s = escapeText(s)
	s = strings.ReplaceAll(s, `"`, "&quot;")
	return s
}
