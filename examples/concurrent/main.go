// Concurrent: demonstrate the paper's concurrency claim — writers under
// *different* logical pages commit concurrently even though they all
// update the size of the shared document root, because ancestor sizes
// are maintained with commutative delta increments instead of locks
// (Section 3.2).
//
// Run with: go run ./examples/concurrent
package main

import (
	"fmt"
	"log"
	"strings"
	"sync"

	"mxq"
)

func main() {
	// A site with eight departments, each big enough to fill its own
	// logical page.
	var sb strings.Builder
	sb.WriteString("<site>")
	for d := 0; d < 8; d++ {
		fmt.Fprintf(&sb, `<department id="d%d">`, d)
		for i := 0; i < 40; i++ {
			fmt.Fprintf(&sb, "<doc>report %d-%d</doc>", d, i)
		}
		sb.WriteString("</department>")
	}
	sb.WriteString("</site>")

	db, err := mxq.Open(mxq.Options{PageSize: 128, FillFactor: 0.7})
	if err != nil {
		log.Fatal(err)
	}
	doc, err := db.LoadXMLString("site", sb.String())
	if err != nil {
		log.Fatal(err)
	}
	rootSize, _ := doc.QueryValue(`count(/site//node())`)
	fmt.Printf("before: %s nodes under the root\n", rootSize)

	// A long-lived consistent snapshot taken before the writers start.
	// It observes today's state no matter how many commits land while it
	// is open, and the deferred Close hands its chunk references back so
	// the base store resumes cheap in-place writes — never hold a
	// snapshot without pairing it with Close.
	snap := doc.Snapshot()
	defer snap.Close()

	// Eight writers, one per department, each appending 25 documents in
	// individual transactions; a concurrent reader keeps querying.
	var wg sync.WaitGroup
	for d := 0; d < 8; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				for {
					_, err := doc.Update(fmt.Sprintf(
						`<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
						   <xupdate:append select='/site/department[@id="d%d"]'><doc>new %d-%d</doc></xupdate:append>
						 </xupdate:modifications>`, d, d, i))
					if err == nil {
						break
					}
					// Page-lock conflict with a neighbour: retry.
				}
			}
		}(d)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for i := 0; i < 50; i++ {
			if _, err := doc.Query(`count(//doc)`); err != nil {
				log.Fatal(err)
			}
		}
	}()
	wg.Wait()
	<-readerDone

	docs, _ := doc.QueryValue(`count(//doc)`)
	fmt.Printf("after: %s docs (8 writers x 25 inserts + 320 initial)\n", docs)
	frozen, _ := snap.QueryValue(`count(//doc)`)
	fmt.Printf("the snapshot from before the writers still sees %s docs\n", frozen)

	s := doc.Stats()
	fmt.Printf("transactions: %d committed, %d aborted on page conflicts\n", s.Commits, s.Aborts)
	fmt.Println("every commit bumped the root's size by a commutative delta —")
	fmt.Println("no transaction ever locked the root's page.")
	if err := doc.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("storage invariants: ok")
}
