// Recovery: demonstrate the durability leg of the transaction protocol —
// committed transactions survive a crash because commit writes a single
// WAL record before applying changes, and recovery replays the segmented
// log over the best available checkpoint image (Section 3.2).
//
// Checkpoints are *online*: the image is pinned at a (version, LSN) pair
// inside the commit critical section and streamed outside any lock, so
// commits keep landing while it writes; completion is published through
// a crash-safe manifest, and only WAL segments wholly below the pinned
// LSN are pruned. With Options.CheckpointEvery a background goroutine
// does this automatically once the WAL tail grows past the policy.
//
// Checkpoints are also *incremental*: column chunks are written to a
// content-addressed chunk store and the image is just a manifest of
// chunk hashes, so a checkpoint after a small change re-references the
// unchanged chunks and writes only the dirtied ones (O(churn) I/O).
// Stats exposes the written/reused counters, printed below.
//
// Run with: go run ./examples/recovery
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
)

import "mxq"

func main() {
	dir, err := os.MkdirTemp("", "mxq-recovery-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Println("durability directory:", dir)

	// Session 1: load, checkpoint, commit updates into the WAL. The
	// policy also auto-checkpoints in the background once 64 records
	// accumulate (not reached here — the explicit call below shows the
	// manual path).
	db, err := mxq.Open(mxq.Options{
		Dir:             dir,
		CheckpointEvery: mxq.CheckpointPolicy{Records: 64},
	})
	if err != nil {
		log.Fatal(err)
	}
	// A few thousand accounts so the columns span many pages — the unit
	// a content-addressed chunk covers. Small appends then dirty only
	// the tail pages, which is what makes the second checkpoint cheap.
	var ledger strings.Builder
	ledger.WriteString(`<ledger>`)
	for i := 0; i < 4000; i++ {
		fmt.Fprintf(&ledger, `<account id="a%d"><balance>%d</balance></account>`, i, 100+i)
	}
	ledger.WriteString(`</ledger>`)
	doc, err := db.LoadXMLString("ledger", ledger.String())
	if err != nil {
		log.Fatal(err)
	}
	if err := doc.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	full := doc.Stats()
	fmt.Printf("online checkpoint written (manifest of %d content-addressed chunks, %d bytes)\n",
		full.CkptChunksWritten, full.CkptBytesWritten)

	for i := 1; i <= 3; i++ {
		_, err := doc.Update(fmt.Sprintf(`<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
		  <xupdate:append select="/ledger">
		    <entry seq="%d"><amount>%d</amount></entry>
		  </xupdate:append>
		</xupdate:modifications>`, i, i*10))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("committed entry %d (one WAL record; concurrent commits would share the fsync)\n", i)
	}
	st := doc.Stats()
	fmt.Printf("wal tail: %d bytes, %d records beyond the checkpoint\n", st.WALBytes, st.WALRecords)

	// A second checkpoint after three small appends is incremental: most
	// chunks are unchanged, so the store already has them and only the
	// dirtied ones are written.
	if err := doc.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	st = doc.Stats()
	fmt.Printf("incremental checkpoint: %d chunks written, %d reused (%d bytes, dedupe %.0f%%)\n",
		st.CkptChunksWritten-full.CkptChunksWritten, st.CkptChunksReused-full.CkptChunksReused,
		st.CkptBytesWritten-full.CkptBytesWritten, 100*st.CkptDedupeRatio)

	// One more committed entry lands only in the WAL, so recovery below
	// exercises both legs: incremental image + replay of its tail.
	if _, err := doc.Update(`<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
	  <xupdate:append select="/ledger">
	    <entry seq="4"><amount>40</amount></entry>
	  </xupdate:append>
	</xupdate:modifications>`); err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed entry 4 (WAL only — after the incremental checkpoint)")

	// Capture the committed pre-crash state through a point-in-time
	// snapshot handle; the deferred Close returns its chunk references
	// once we are done comparing (the snapshot-handle contract: always
	// pair Snapshot with Close).
	snap := doc.Snapshot()
	defer snap.Close()
	want, err := snap.XML()
	if err != nil {
		log.Fatal(err)
	}

	// Simulate a crash: walk away without another checkpoint. Entry 4
	// exists only in the WAL segments.
	db.Close()
	fmt.Println("\n-- crash --")

	// Session 2: recovery = manifest'd checkpoint image (the chunks it
	// names) + WAL replay.
	db2, err := mxq.Open(mxq.Options{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	doc2, ok := db2.Document("ledger")
	if !ok {
		log.Fatal("ledger not recovered")
	}
	got, err := doc2.XML()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered document: %d bytes of XML\n", len(got))
	if got == want {
		fmt.Println("\nrecovered state matches the pre-crash committed state: ok")
	} else {
		log.Fatalf("MISMATCH:\nwant %s\ngot  %s", want, got)
	}
	n, _ := doc2.QueryValue(`count(/ledger/entry)`)
	fmt.Printf("entries after recovery: %s of 4\n", n)
}
