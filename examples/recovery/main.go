// Recovery: demonstrate the durability leg of the transaction protocol —
// committed transactions survive a crash because commit writes a single
// WAL record before applying changes, and recovery replays the segmented
// log over the best available checkpoint image (Section 3.2).
//
// Checkpoints are *online*: the image is pinned at a (version, LSN) pair
// inside the commit critical section and streamed outside any lock, so
// commits keep landing while it writes; completion is published through
// a crash-safe manifest, and only WAL segments wholly below the pinned
// LSN are pruned. With Options.CheckpointEvery a background goroutine
// does this automatically once the WAL tail grows past the policy.
//
// Run with: go run ./examples/recovery
package main

import (
	"fmt"
	"log"
	"os"
)

import "mxq"

func main() {
	dir, err := os.MkdirTemp("", "mxq-recovery-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Println("durability directory:", dir)

	// Session 1: load, checkpoint, commit updates into the WAL. The
	// policy also auto-checkpoints in the background once 64 records
	// accumulate (not reached here — the explicit call below shows the
	// manual path).
	db, err := mxq.Open(mxq.Options{
		Dir:             dir,
		CheckpointEvery: mxq.CheckpointPolicy{Records: 64},
	})
	if err != nil {
		log.Fatal(err)
	}
	doc, err := db.LoadXMLString("ledger", `<ledger><account id="a1"><balance>100</balance></account></ledger>`)
	if err != nil {
		log.Fatal(err)
	}
	if err := doc.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("online checkpoint written (manifest + LSN-stamped image)")

	for i := 1; i <= 3; i++ {
		_, err := doc.Update(fmt.Sprintf(`<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
		  <xupdate:append select="/ledger">
		    <entry seq="%d"><amount>%d</amount></entry>
		  </xupdate:append>
		</xupdate:modifications>`, i, i*10))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("committed entry %d (one WAL record; concurrent commits would share the fsync)\n", i)
	}
	st := doc.Stats()
	fmt.Printf("wal tail: %d bytes, %d records beyond the checkpoint\n", st.WALBytes, st.WALRecords)

	// Capture the committed pre-crash state through a point-in-time
	// snapshot handle; the deferred Close returns its chunk references
	// once we are done comparing (the snapshot-handle contract: always
	// pair Snapshot with Close).
	snap := doc.Snapshot()
	defer snap.Close()
	want, err := snap.XML()
	if err != nil {
		log.Fatal(err)
	}

	// Simulate a crash: walk away without checkpointing. The three
	// committed records exist only in the WAL segments.
	db.Close()
	fmt.Println("\n-- crash --")

	// Session 2: recovery = manifest'd checkpoint image + WAL replay.
	db2, err := mxq.Open(mxq.Options{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	doc2, ok := db2.Document("ledger")
	if !ok {
		log.Fatal("ledger not recovered")
	}
	got, err := doc2.XML()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered document:")
	fmt.Println(got)
	if got == want {
		fmt.Println("\nrecovered state matches the pre-crash committed state: ok")
	} else {
		log.Fatalf("MISMATCH:\nwant %s\ngot  %s", want, got)
	}
	n, _ := doc2.QueryValue(`count(/ledger/entry)`)
	fmt.Printf("entries after recovery: %s of 3\n", n)
}
