// Quickstart: load a document, query it, update it, serialize it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"mxq"
)

const catalog = `<catalog>
  <product sku="P-100"><name>Copper kettle</name><price>49.50</price></product>
  <product sku="P-200"><name>Iron skillet</name><price>32.00</price></product>
  <product sku="P-300"><name>Gold ladle</name><price>180.00</price></product>
</catalog>`

func main() {
	db, err := mxq.Open(mxq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	doc, err := db.LoadXMLString("catalog", catalog)
	if err != nil {
		log.Fatal(err)
	}

	// XPath queries run against the pre/size/level encoding via
	// staircase join.
	names, err := doc.Query(`/catalog/product/name/text()`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("products:")
	for _, item := range names {
		fmt.Println("  -", item.Value)
	}

	cheap, err := doc.QueryValue(`count(/catalog/product[price < 50])`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("products under 50:", cheap)

	// Structural updates go through XUpdate. The insert lands in the
	// unused tuples of the product's logical page — no pre renumbering.
	res, err := doc.Update(`<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
	  <xupdate:append select="/catalog">
	    <product sku="P-400"><name>Tin whistle</name><price>12.50</price></product>
	  </xupdate:append>
	  <xupdate:update select="/catalog/product[@sku='P-200']/price">35.00</xupdate:update>
	  <xupdate:remove select="/catalog/product[@sku='P-300']"/>
	</xupdate:modifications>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update: %d commands, %d nodes affected\n", res.Ops, res.Affected)

	fmt.Println("\nfinal document:")
	if err := doc.SerializeTo(os.Stdout, "  "); err != nil {
		log.Fatal(err)
	}

	s := doc.Stats()
	fmt.Printf("\nstorage: %d live nodes in %d pages of %d tuples (%.0f%% full)\n",
		s.LiveNodes, s.Pages, s.PageSize, 100*s.Fill)
}
