// Auctionsite: drive the paper's evaluation workload end to end — load a
// generated XMark document, run XMark queries through the public API, and
// place a bid via XUpdate, all on the updatable pre/size/level store.
//
// Run with: go run ./examples/auctionsite
package main

import (
	"bytes"
	"fmt"
	"log"

	"mxq"
	"mxq/internal/xmark"
)

func main() {
	// Generate a small XMark auction site (SF 0.003 ≈ a few hundred KB).
	var buf bytes.Buffer
	if _, err := xmark.NewGenerator(0.003, 7).WriteTo(&buf); err != nil {
		log.Fatal(err)
	}

	db, err := mxq.Open(mxq.Options{FillFactor: 0.8})
	if err != nil {
		log.Fatal(err)
	}
	doc, err := db.LoadXML("auction", &buf)
	if err != nil {
		log.Fatal(err)
	}
	s := doc.Stats()
	fmt.Printf("loaded XMark site: %d nodes, %d logical pages (%.0f%% full)\n",
		s.LiveNodes, s.Pages, 100*s.Fill)

	// XMark Q1: the registered name of person0.
	name, err := doc.QueryValue(`/site/people/person[@id="person0"]/name/text()`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q1  person0 is:", name)

	// XMark Q2-flavored: current high bids.
	increases, err := doc.Query(`/site/open_auctions/open_auction/bidder[1]/increase/text()`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q2  first increases of %d open auctions\n", len(increases))

	// XMark Q5: expensive sales.
	n, err := doc.QueryValue(`count(/site/closed_auctions/closed_auction[price >= 40])`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q5  sold items >= 40:", n)

	// Place a bid: a structural insert into open_auction0. The new
	// bidder element must come after all existing bidders, i.e. directly
	// before <current> — XUpdate insert-before does exactly that.
	before, _ := doc.QueryValue(`count(//open_auction[@id="open_auction0"]/bidder)`)
	_, err = doc.Update(`<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
	  <xupdate:insert-before select='//open_auction[@id="open_auction0"]/current'>
	    <bidder><date>06/11/2026</date><time>12:00:00</time>
	      <personref person="person0"/><increase>9.00</increase></bidder>
	  </xupdate:insert-before>
	  <xupdate:update select='//open_auction[@id="open_auction0"]/current'>999.00</xupdate:update>
	</xupdate:modifications>`)
	if err != nil {
		log.Fatal(err)
	}
	after, _ := doc.QueryValue(`count(//open_auction[@id="open_auction0"]/bidder)`)
	fmt.Printf("bid placed: open_auction0 has %s -> %s bidders\n", before, after)

	cur, _ := doc.QueryValue(`//open_auction[@id="open_auction0"]/current/text()`)
	fmt.Println("new current price:", cur)

	// The insert went into page free space: node count grew, page count
	// typically did not.
	s2 := doc.Stats()
	fmt.Printf("storage after update: %d nodes, %d pages (was %d)\n", s2.LiveNodes, s2.Pages, s.Pages)
	if err := doc.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("storage invariants: ok")
}
