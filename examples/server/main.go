// Server quickstart: everything a networked mxq client does — connect,
// load, query (with a server-side cached plan), update, and a pinned
// snapshot read that ignores a concurrent commit.
//
// It starts an in-process mxqd for convenience; against a real daemon,
// drop the server block and point client.Dial at its address:
//
//	mxqd -addr :4477 -dir data/ &
//	go run ./examples/server
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"mxq"
	"mxq/client"
	"mxq/internal/server"
)

var bg = context.Background()

const catalog = `<catalog>
  <product sku="P-100"><name>Copper kettle</name><price>49.50</price></product>
  <product sku="P-200"><name>Iron skillet</name><price>32.00</price></product>
</catalog>`

const addProduct = `<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  <xupdate:append select="/catalog"><product sku="P-300"><name>Gold ladle</name><price>180.00</price></product></xupdate:append>
</xupdate:modifications>`

func main() {
	// An in-process daemon: mxqd does exactly this around a Database.
	db, err := mxq.Open(mxq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(server.Config{DB: db})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	defer func() {
		srv.Shutdown(5 * time.Second)
		db.Close()
	}()

	// One Client = one session: requests are sequential per connection,
	// and concurrency comes from opening more clients.
	c, err := client.Dial(bg, l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	if err := c.Load(bg, "catalog", catalog); err != nil {
		log.Fatal(err)
	}

	// The session caches the compiled plan: the second run of the same
	// query text skips the parse server-side.
	names, err := c.Query(bg, "catalog", `/catalog/product/name/text()`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("products:")
	for _, item := range names {
		fmt.Println("  -", item.Value)
	}

	// Variables bind as strings on the wire.
	one, err := c.Query(bg, "catalog", `//product[@sku = $sku]/price/text()`,
		map[string]string{"sku": "P-200"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("P-200 price:", one[0].Value)

	// A pinned read: every query until EndRead observes the version
	// committed at BeginRead, no matter what lands in between.
	version, err := c.BeginRead(bg, "catalog")
	if err != nil {
		log.Fatal(err)
	}
	writer, err := client.Dial(bg, l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer writer.Close()
	if _, err := writer.Update(bg, "catalog", addProduct); err != nil {
		log.Fatal(err)
	}
	pinned, _ := c.Query(bg, "catalog", `count(//product)`, nil)
	fresh, _ := writer.Query(bg, "catalog", `count(//product)`, nil)
	fmt.Printf("pinned at version %d sees %s products; unpinned sees %s\n",
		version, pinned[0].Value, fresh[0].Value)
	if err := c.EndRead(bg, "catalog"); err != nil {
		log.Fatal(err)
	}
	after, _ := c.Query(bg, "catalog", `count(//product)`, nil)
	fmt.Println("after EndRead:", after[0].Value)

	// Explain renders the compiled plan the server executes.
	plan, err := c.Explain(bg, "catalog", `//product[name]`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("plan for //product[name]:\n", plan)
}
