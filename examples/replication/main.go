// Replication quickstart: a primary and a read replica, and a client
// that writes to one and reads from the other without ever seeing a
// version older than its own writes.
//
// The primary ships its per-document WAL to the follower over the
// same wire protocol queries use: an empty follower bootstraps from a
// pinned checkpoint image, then replays record batches as the primary
// commits them. Every update response carries its commit LSN; a client
// configured with WithReadReplica routes queries to the follower
// tagged with the highest LSN it has seen, and the follower holds each
// read until that LSN is applied — read-your-writes, never a silently
// stale answer.
//
// It runs both sides in-process for convenience; against real daemons,
// drop the server blocks and point the addresses at:
//
//	mxqd -addr :4477 -dir primary/ &
//	mxqd -addr :4478 -dir replica/ -follow 127.0.0.1:4477 &
//	go run ./examples/replication
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"mxq"
	"mxq/client"
	"mxq/internal/server"
)

var bg = context.Background()

const ledger = `<ledger>
  <account id="a1"><balance>100</balance></account>
  <account id="a2"><balance>250</balance></account>
</ledger>`

const credit = `<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  <xupdate:update select="/ledger/account[@id='a1']/balance">175</xupdate:update>
</xupdate:modifications>`

func main() {
	dir, err := os.MkdirTemp("", "mxq-repl-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Primary: a durable database (replication ships the WAL, so a
	// durability directory is required) behind a server.
	primaryDB, err := mxq.Open(mxq.Options{Dir: filepath.Join(dir, "primary"), NoSync: true})
	if err != nil {
		log.Fatal(err)
	}
	primarySrv := server.New(server.Config{DB: primaryDB})
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go primarySrv.Serve(pl)
	defer func() {
		primarySrv.Shutdown(5 * time.Second)
		primaryDB.Close()
	}()

	// The document must exist before a follower can subscribe to it.
	loader, err := client.Dial(bg, pl.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	if err := loader.Load(bg, "ledger", ledger); err != nil {
		log.Fatal(err)
	}
	loader.Close()

	// Follower: its own durable database, subscribed to the primary,
	// served read-only (mxqd -follow does exactly this).
	followerDB, err := mxq.Open(mxq.Options{Dir: filepath.Join(dir, "follower"), NoSync: true})
	if err != nil {
		log.Fatal(err)
	}
	stopFollow, err := followerDB.FollowDocument(pl.Addr().String(), "ledger")
	if err != nil {
		log.Fatal(err)
	}
	followerSrv := server.New(server.Config{DB: followerDB, ReadOnly: true})
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go followerSrv.Serve(fl)
	defer func() {
		followerSrv.Shutdown(5 * time.Second)
		stopFollow()
		followerDB.Close()
	}()

	// One client, two connections: updates go to the primary, queries
	// route to the replica carrying the session's last commit LSN.
	c, err := client.Dial(bg, pl.Addr().String(),
		client.WithReadReplica(fl.Addr().String()),
		client.WithRYWTimeout(5*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	res, err := c.Update(bg, "ledger", credit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update committed at LSN %d\n", res.LSN)

	// This read is served by the follower — but only once it has applied
	// the commit above. No sleep, no polling, no stale answer.
	balance, err := c.Query(bg, "ledger", `/ledger/account[@id='a1']/balance/text()`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica-routed read after write: balance = %s\n", balance[0].Value)

	// Writes to the follower are rejected typed: one writer per
	// document, and it lives on the primary.
	ro, err := client.Dial(bg, fl.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer ro.Close()
	if _, err := ro.Update(bg, "ledger", credit); errors.Is(err, client.ErrReadOnly) {
		fmt.Println("direct write to follower: rejected read-only, as it should be")
	} else {
		log.Fatalf("expected ErrReadOnly from follower, got %v", err)
	}

	// Replication status: primary tail vs follower applied LSN.
	p, err := c.DocStatus(bg, "ledger")
	if err != nil {
		log.Fatal(err)
	}
	r, err := c.ReplicaStatus(bg, "ledger")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primary %s at LSN %d; follower %s applied %d (lag %d)\n",
		p.Role, p.LastLSN, r.Role, r.AppliedLSN, int64(p.LastLSN)-int64(r.AppliedLSN))
}
